"""Tests for the KMC-style sort-based counting backend."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.sortcount import SortingCounter, radix_sort_count, sort_count

key_batches = st.lists(st.integers(min_value=0, max_value=2**62), min_size=0, max_size=400)


class TestSortCount:
    @given(keys=key_batches)
    @settings(max_examples=60)
    def test_matches_unique_oracle(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        vals, counts = sort_count(arr)
        exp_vals, exp_counts = np.unique(arr, return_counts=True)
        assert np.array_equal(vals, exp_vals)
        assert np.array_equal(counts, exp_counts)

    def test_empty(self):
        vals, counts = sort_count(np.empty(0, dtype=np.uint64))
        assert vals.shape == (0,) and counts.shape == (0,)


class TestRadixSortCount:
    @given(keys=key_batches)
    @settings(max_examples=60)
    def test_matches_unique_oracle(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        vals, counts = radix_sort_count(arr)
        exp_vals, exp_counts = np.unique(arr, return_counts=True)
        assert np.array_equal(vals, exp_vals)
        assert np.array_equal(counts, exp_counts)

    @given(keys=st.lists(st.integers(min_value=0, max_value=4**17 - 1), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_reduced_passes_for_small_keys(self, keys):
        """k=17 packed k-mers fit 34 bits: 5 radix passes suffice."""
        arr = np.array(keys, dtype=np.uint64)
        vals, counts = radix_sort_count(arr, significant_bits=34)
        exp_vals, exp_counts = np.unique(arr, return_counts=True)
        assert np.array_equal(vals, exp_vals)
        assert np.array_equal(counts, exp_counts)

    def test_significant_bits_validation(self):
        with pytest.raises(ValueError):
            radix_sort_count(np.zeros(1, dtype=np.uint64), significant_bits=0)
        with pytest.raises(ValueError):
            radix_sort_count(np.zeros(1, dtype=np.uint64), significant_bits=65)

    def test_full_width_values(self):
        arr = np.array([2**63 + 5, 1, 2**63 + 5, 2**64 - 1], dtype=np.uint64)
        vals, counts = radix_sort_count(arr)
        assert vals.tolist() == [1, 2**63 + 5, 2**64 - 1]
        assert counts.tolist() == [1, 2, 1]


class TestSortingCounter:
    @given(batches=st.lists(key_batches, min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_batch_accumulation_matches_oracle(self, batches):
        counter = SortingCounter()
        for batch in batches:
            counter.insert_batch(np.array(batch, dtype=np.uint64))
        everything = np.array([x for b in batches for x in b], dtype=np.uint64)
        exp_vals, exp_counts = np.unique(everything, return_counts=True)
        vals, counts = counter.items()
        assert np.array_equal(vals, exp_vals)
        assert np.array_equal(counts, exp_counts)

    def test_agrees_with_hash_table(self, genome_reads):
        """The two counting backends must produce identical histograms."""
        from repro.gpu.hashtable import DeviceHashTable
        from repro.kmers import extract_kmers

        kmers = extract_kmers(genome_reads, 17)
        hash_table = DeviceHashTable(64)
        hash_table.insert_batch(kmers)
        sorter = SortingCounter()
        sorter.insert_batch(kmers)
        hv, hc = hash_table.items()
        sv, sc = sorter.items()
        assert np.array_equal(hv, sv)
        assert np.array_equal(hc, sc)

    def test_lookup(self):
        counter = SortingCounter()
        counter.insert_batch(np.array([5, 5, 9], dtype=np.uint64))
        assert counter.lookup_batch(np.array([5, 9, 100], dtype=np.uint64)).tolist() == [2, 1, 0]
        assert counter.n_entries == 2

    def test_lookup_empty(self):
        counter = SortingCounter()
        assert counter.lookup_batch(np.array([1], dtype=np.uint64)).tolist() == [0]
