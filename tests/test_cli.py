"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.kmers.kmerdb import read_kmerdb


@pytest.fixture
def fastq(tmp_path):
    path = tmp_path / "sample.fastq"
    code = main(
        [
            "simulate",
            "--genome-length",
            "8000",
            "--coverage",
            "6",
            "--read-length",
            "400",
            "--seed",
            "7",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestDatasets:
    def test_lists_all_six(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("ecoli30x", "hsapiens54x"):
            assert name in out


class TestSimulate:
    def test_custom_genome(self, fastq, capsys):
        assert fastq.exists()

    def test_registry_dataset(self, tmp_path, capsys):
        path = tmp_path / "ds.fastq"
        assert main(["simulate", "--dataset", "abaumannii30x", "--scale", "0.05", "--out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert path.exists()


class TestCount:
    def test_count_writes_db_and_tsv(self, fastq, tmp_path, capsys):
        db = tmp_path / "out.rkdb"
        tsv = tmp_path / "out.tsv"
        code = main(
            [
                "count",
                "--input",
                str(fastq),
                "-k",
                "15",
                "--nodes",
                "2",
                "--out-db",
                str(db),
                "--out-tsv",
                str(tsv),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total_kmers" in out
        spectrum = read_kmerdb(db)
        assert spectrum.k == 15 and spectrum.n_distinct > 0
        assert len(tsv.read_text().splitlines()) == spectrum.n_distinct

    def test_count_matches_oracle(self, fastq, tmp_path):
        from repro.dna.fastq import read_fastq
        from repro.dna.reads import ReadSet
        from repro.kmers.spectrum import count_kmers_exact

        db = tmp_path / "out.rkdb"
        assert main(["count", "--input", str(fastq), "-k", "13", "--mode", "kmer", "--out-db", str(db)]) == 0
        reads = ReadSet.from_records(read_fastq(fastq))
        assert read_kmerdb(db).equals(count_kmers_exact(reads, 13))

    def test_min_count_filter(self, fastq, tmp_path):
        all_db = tmp_path / "all.rkdb"
        solid_db = tmp_path / "solid.rkdb"
        main(["count", "--input", str(fastq), "--out-db", str(all_db)])
        main(["count", "--input", str(fastq), "--min-count", "3", "--out-db", str(solid_db)])
        assert read_kmerdb(solid_db).n_distinct < read_kmerdb(all_db).n_distinct

    def test_missing_input_is_error(self, capsys):
        assert main(["count", "--input", "/nonexistent.fastq"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_k_is_error(self, fastq, capsys):
        assert main(["count", "--input", str(fastq), "-k", "40"]) == 2


class TestSpectrum:
    def test_profile_and_histogram(self, fastq, tmp_path, capsys):
        db = tmp_path / "out.rkdb"
        main(["count", "--input", str(fastq), "--out-db", str(db)])
        capsys.readouterr()
        assert main(["spectrum", "--db", str(db), "--histogram", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "distinct" in out and "#" in out


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "--dataset", "abaumannii30x", "--scale", "0.1", "--nodes", "2", "--no-cpu"]) == 0
        out = capsys.readouterr().out
        assert "supermer-m7" in out and "speedup" in out


class TestQualityOptions:
    def test_quality_filter_reduces_reads(self, fastq, tmp_path, capsys):
        assert main(["count", "--input", str(fastq), "--min-read-length", "300"]) == 0
        out = capsys.readouterr().out
        assert "quality filter kept" in out


class TestMultiFileAndCheckpoint:
    def test_two_inputs_accumulate(self, fastq, tmp_path, capsys):
        db_one = tmp_path / "one.rkdb"
        db_two = tmp_path / "two.rkdb"
        main(["count", "--input", str(fastq), "-k", "15", "--out-db", str(db_one)])
        main(["count", "--input", str(fastq), str(fastq), "-k", "15", "--out-db", str(db_two)])
        import numpy as np

        one = read_kmerdb(db_one)
        two = read_kmerdb(db_two)
        assert np.array_equal(one.values, two.values)
        assert np.array_equal(one.counts * 2, two.counts)

    def test_checkpoint_resume(self, fastq, tmp_path, capsys):
        ckpt = tmp_path / "state.npz"
        db_a = tmp_path / "a.rkdb"
        db_b = tmp_path / "b.rkdb"
        # First invocation counts one file and checkpoints.
        main(["count", "--input", str(fastq), "-k", "15", "--checkpoint", str(ckpt), "--out-db", str(db_a)])
        assert ckpt.exists()
        capsys.readouterr()
        # Second invocation resumes and adds the same file again.
        main(["count", "--input", str(fastq), "-k", "15", "--checkpoint", str(ckpt), "--out-db", str(db_b)])
        out = capsys.readouterr().out
        assert "resumed from" in out
        import numpy as np

        a = read_kmerdb(db_a)
        b = read_kmerdb(db_b)
        assert np.array_equal(a.counts * 2, b.counts)


class TestDistance:
    def test_distance_between_datasets(self, fastq, tmp_path, capsys):
        db_a = tmp_path / "a.rkdb"
        db_b = tmp_path / "b.rkdb"
        main(["count", "--input", str(fastq), "-k", "15", "--out-db", str(db_a)])
        # second database: same file counted again -> identical spectrum
        main(["count", "--input", str(fastq), "-k", "15", "--out-db", str(db_b)])
        capsys.readouterr()
        assert main(["distance", "--db-a", str(db_a), "--db-b", str(db_b)]) == 0
        out = capsys.readouterr().out
        assert "jaccard" in out
        assert "1.0000" in out  # identical sets

    def test_distance_k_mismatch_is_error(self, fastq, tmp_path, capsys):
        db_a = tmp_path / "a.rkdb"
        db_b = tmp_path / "b.rkdb"
        main(["count", "--input", str(fastq), "-k", "15", "--out-db", str(db_a)])
        main(["count", "--input", str(fastq), "-k", "17", "--out-db", str(db_b)])
        assert main(["distance", "--db-a", str(db_a), "--db-b", str(db_b)]) == 2
