"""Cross-subsystem consistency: every counting path in the library agrees.

The library now has five independent ways to produce a k-mer histogram:
the oracle (`np.unique`), the BSP engine (both modes), the threaded SPMD
programs, the incremental counter, and the sort-based backend.  They share
some building blocks but differ in control flow, partitioning, transport,
and data structures — so pairwise agreement on the same input is a strong
whole-library invariant.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PipelineConfig
from repro.core.engine import run_pipeline
from repro.core.incremental import DistributedCounter
from repro.core.spmd import count_spmd
from repro.dna.reads import ReadSet
from repro.ext.sortcount import SortingCounter
from repro.kmers import extract_kmers
from repro.kmers.spectrum import KmerSpectrum, count_kmers_exact
from repro.mpi.topology import summit_gpu


def all_histograms(reads: ReadSet, k: int) -> dict[str, KmerSpectrum]:
    """One histogram per counting path."""
    out: dict[str, KmerSpectrum] = {}
    out["oracle"] = count_kmers_exact(reads, k)
    out["engine-kmer"] = run_pipeline(reads, summit_gpu(2), PipelineConfig(k=k)).spectrum
    out["engine-supermer"] = run_pipeline(
        reads, summit_gpu(2), PipelineConfig(k=k, mode="supermer", minimizer_len=max(2, k // 2), window=None)
    ).spectrum
    out["spmd"] = count_spmd(reads, n_ranks=5, config=PipelineConfig(k=k))
    counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=k))
    counter.add_reads(reads)
    out["incremental"] = counter.spectrum()
    sorter = SortingCounter()
    sorter.insert_batch(extract_kmers(reads, k))
    values, counts = sorter.items()
    out["sort-backend"] = KmerSpectrum(k=k, values=values, counts=counts)
    return out


class TestAllPathsAgree:
    def test_on_genome_reads(self, genome_reads):
        histograms = all_histograms(genome_reads, 17)
        oracle = histograms.pop("oracle")
        for name, spectrum in histograms.items():
            assert spectrum.equals(oracle), name

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        k=st.integers(min_value=3, max_value=21),
    )
    @settings(max_examples=15, deadline=None)
    def test_on_random_inputs(self, seed, k):
        rng = np.random.default_rng(seed)
        reads = ReadSet.from_strings(
            ["".join("ACGTN"[c] for c in rng.integers(0, 5, size=int(rng.integers(0, 150)))) for _ in range(6)]
        )
        histograms = all_histograms(reads, k)
        oracle = histograms.pop("oracle")
        for name, spectrum in histograms.items():
            assert spectrum.equals(oracle), (name, seed, k)
