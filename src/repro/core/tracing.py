"""Timeline export of a simulated run (Chrome trace-event format).

Turns a :class:`CountResult` into the JSON trace format consumed by
``chrome://tracing`` / Perfetto / Speedscope: one row per rank with parse /
exchange / count spans in model time, so the bulk-synchronous structure and
the imbalance (ragged phase edges) are visible at a glance.

The exchange is a single global span (bulk-synchronous collective); parse
and count use each rank's own modeled duration, aligned to the phase start
as on the real machine.

A second timeline lives here too: :class:`WallClockRecorder` captures the
*host* wall-clock span of each rank's phase body as the engine actually
executed it.  Under the sequential engine the spans form a staircase (one
rank after another); under the parallel engine (``REPRO_PARALLEL``) they
overlap, and :meth:`WallClockRecorder.overlap_factor` quantifies by how
much.  Model time and wall time are deliberately separate timelines —
parallel execution changes only the second.

A third timeline arrived with hierarchical tracing
(:class:`repro.telemetry.spans.SpanRecorder`): the scheduler's region tree
(run → batch → round → stage) with the per-rank wall spans as its leaves.
:func:`run_trace_payload` / :func:`write_run_trace` assemble all three
into one trace file (schema ``repro-trace/1``) consumed by
``chrome://tracing`` / Perfetto *and* by ``repro analyze``
(:mod:`repro.core.analysis`).  :func:`recording_region` is the engine-side
glue: a no-op on ``None`` or a plain :class:`WallClockRecorder`, a real
nested region on a :class:`~repro.telemetry.spans.SpanRecorder` — so the
scheduler instruments one way and tracing stays strictly opt-in.
"""

from __future__ import annotations

import json
import threading
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..telemetry.spans import SpanRecorder, span_payload, span_tree_events
from .results import CountResult

if TYPE_CHECKING:  # typing only — no runtime import cycle
    from .incremental import DistributedCounter

__all__ = [
    "trace_events",
    "write_chrome_trace",
    "WallSpan",
    "WallClockRecorder",
    "wall_trace_events",
    "write_wall_trace",
    "recording_region",
    "TRACE_SCHEMA",
    "run_trace_payload",
    "write_run_trace",
]

_US = 1e6  # trace timestamps are microseconds

#: Schema tag of the run-trace JSON file (validated by tools/check_trace.py).
TRACE_SCHEMA = "repro-trace/1"


def trace_events(result: CountResult, *, max_ranks: int | None = 64) -> list[dict[str, Any]]:
    """Build the trace-event list for one run.

    ``max_ranks`` caps the number of emitted rank rows (traces with
    thousands of rows are unreadable); the max-duration rank in each phase
    is always included so the critical path is never dropped.
    """
    p = result.cluster.n_ranks
    ranks = list(range(p))
    if max_ranks is not None and p > max_ranks:
        keep = set(range(max_ranks - 2))
        keep.add(int(result.per_rank_parse.argmax()))
        keep.add(int(result.per_rank_count.argmax()))
        ranks = sorted(keep)

    events: list[dict[str, Any]] = []

    def span(name: str, rank: int, start_s: float, dur_s: float, **args: Any) -> None:
        events.append(
            {
                "name": name,
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "ts": start_s * _US,
                "dur": max(dur_s, 0.0) * _US,
                "cat": "pipeline",
                "args": args,
            }
        )

    t = result.timing
    for r in ranks:
        span("parse", r, 0.0, float(result.per_rank_parse[r]))
    exchange_start = t.parse
    for r in ranks:
        span(
            "exchange",
            r,
            exchange_start,
            t.exchange,
            bytes=int(result.exchanged_bytes),
            items=int(result.exchanged_items),
        )
    count_start = exchange_start + t.exchange
    for r in ranks:
        span("count", r, count_start, float(result.per_rank_count[r]), received=int(result.received_kmers[r]))

    # Rank-row metadata so viewers label threads.
    for r in ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": r,
                "args": {"name": f"rank {r} (node {result.cluster.node_of(r)})"},
            }
        )
    return events


@dataclass(frozen=True)
class WallSpan:
    """One rank's phase body as executed on the host: [start_s, end_s)."""

    name: str  # phase label, e.g. "parse", "count-round0"
    rank: int
    start_s: float
    end_s: float

    @property
    def dur_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


class WallClockRecorder:
    """Thread-safe log of per-rank wall-clock phase spans.

    Pass one via ``EngineOptions(span_recorder=...)``; the engine records a
    span per (phase, rank) pair with host ``perf_counter`` timestamps.
    Worker threads append concurrently, so the log is lock-protected; spans
    are returned sorted by (start, rank) so output never depends on
    completion order.
    """

    def __init__(self) -> None:
        self._spans: list[WallSpan] = []
        self._lock = threading.Lock()

    def record(self, name: str, rank: int, start_s: float, end_s: float) -> None:
        with self._lock:
            self._spans.append(WallSpan(name=name, rank=rank, start_s=start_s, end_s=end_s))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def spans(self, name: str | None = None) -> list[WallSpan]:
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return sorted(spans, key=lambda s: (s.start_s, s.rank))

    def phases(self) -> list[str]:
        """Distinct phase names in first-appearance order."""
        seen: dict[str, None] = {}
        with self._lock:
            for s in self._spans:
                seen.setdefault(s.name, None)
        return list(seen)

    def busy_seconds(self, name: str | None = None) -> float:
        """Sum of span durations (total rank-seconds of work)."""
        return sum(s.dur_s for s in self.spans(name))

    def elapsed_seconds(self, name: str | None = None) -> float:
        """Wall window covering the spans (max end - min start)."""
        spans = self.spans(name)
        if not spans:
            return 0.0
        return max(s.end_s for s in spans) - min(s.start_s for s in spans)

    def overlap_factor(self, name: str | None = None) -> float:
        """Achieved concurrency: busy seconds / elapsed seconds.

        1.0 means fully serialized (the sequential engine); N means N
        ranks' work overlapped perfectly on average.  An empty recorder (or
        one whose spans are all zero-length) reports the neutral 1.0 — "no
        concurrency evidence either way" — so ratio consumers never divide
        by zero.
        """
        elapsed = self.elapsed_seconds(name)
        return self.busy_seconds(name) / elapsed if elapsed > 0 else 1.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def region(self, name: str, *, cat: str = "stage", rank: int | None = None, **meta: Any):
        """No-op region: hierarchy needs a :class:`SpanRecorder` (same API)."""
        del name, cat, rank, meta
        return nullcontext(None)


def recording_region(recorder: Any, name: str, *, cat: str = "stage", **meta: Any):
    """A region context on whatever recorder the run carries.

    ``None`` (tracing off) and :class:`WallClockRecorder` (flat wall spans
    only) yield ``None``; a :class:`~repro.telemetry.spans.SpanRecorder`
    opens a real nested region and yields its handle (``.note(**kv)``
    attaches late metadata).  Engine code wraps phases with this
    unconditionally — the overhead when tracing is off is one ``is None``
    check and a ``nullcontext``.
    """
    if recorder is None:
        return nullcontext(None)
    return recorder.region(name, cat=cat, **meta)


def wall_trace_events(recorder: WallClockRecorder) -> list[dict[str, Any]]:
    """Chrome trace events of the recorded wall-clock spans.

    Timestamps are rebased so the earliest span starts at 0; one trace row
    per rank (``tid``), so overlap between ranks is visible exactly as the
    host executed it.  An empty recorder yields an empty (valid) event list.
    """
    spans = recorder.spans()
    if not spans:
        return []
    t0 = min(s.start_s for s in spans)
    events: list[dict[str, Any]] = []
    for s in spans:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "pid": 1,
                "tid": s.rank,
                "ts": (s.start_s - t0) * _US,
                "dur": s.dur_s * _US,
                "cat": "wall",
                "args": {},
            }
        )
    for rank in sorted({s.rank for s in spans}):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": rank, "args": {"name": f"rank {rank} (wall)"}}
        )
    return events


def write_wall_trace(recorder: WallClockRecorder, path: str | Path) -> Path:
    """Write the recorded wall-clock spans as a Chrome trace JSON file."""
    path = Path(path)
    payload = {
        "traceEvents": wall_trace_events(recorder),
        "displayTimeUnit": "ms",
        "metadata": {
            "busy_seconds": recorder.busy_seconds(),
            "elapsed_seconds": recorder.elapsed_seconds(),
            "overlap_factor": recorder.overlap_factor(),
        },
    }
    path.write_text(json.dumps(payload))
    return path


def write_chrome_trace(
    result: CountResult,
    path: str | Path,
    *,
    max_ranks: int | None = 64,
    registry: "Any | None" = None,
) -> Path:
    """Write the run's timeline as a Chrome trace JSON file.

    Passing a :class:`repro.telemetry.MetricRegistry` merges its counter
    tracks (``ph: "C"`` events) into the timeline, so metric magnitudes —
    exchange bytes, probe counts, phase seconds — render alongside the
    phase spans in Perfetto.
    """
    path = Path(path)
    events = trace_events(result, max_ranks=max_ranks)
    if registry is not None:
        from ..telemetry import metric_trace_events

        events.extend(metric_trace_events(registry, result=result))
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "config": result.config.describe(),
            "cluster": result.cluster.name,
            "backend": result.backend,
            "total_model_seconds": result.timing.total,
        },
    }
    path.write_text(json.dumps(payload))
    return path


# ---------------------------------------------------------------------------
# The combined run trace (schema repro-trace/1)
# ---------------------------------------------------------------------------


def run_trace_payload(
    recorder: "WallClockRecorder | SpanRecorder | None",
    *,
    result: CountResult | None = None,
    counter: "DistributedCounter | None" = None,
    registry: Any | None = None,
    profile_text: str | None = None,
    max_ranks: int | None = 64,
) -> dict[str, Any]:
    """Assemble every timeline of one run into the ``repro-trace/1`` payload.

    Tracks, by Chrome-trace ``pid``:

    * ``pid 0`` — the *model* timeline (per-rank parse/exchange/count in
      modeled seconds; requires ``result``);
    * ``pid 1`` — the *wall* timeline (per-rank work spans as the host
      executed them; any recorder);
    * ``pid 2`` — the scheduler's nested region tree (run → batch → round
      → stage; :class:`~repro.telemetry.spans.SpanRecorder` only);
    * counter tracks from ``registry`` (``ph: "C"``), when given.

    Beyond ``traceEvents`` the payload carries the raw ``"spans"`` array
    (the analysis input; see :func:`repro.core.analysis.analyze_spans`)
    and a ``"metadata"`` section with the deterministic model phase
    seconds, run identity, wall summary, and — when ``repro count
    --profile --trace`` ran — the embedded cProfile rendering that
    ``repro analyze --profile`` prints.
    """
    if result is None and counter is None and recorder is None:
        raise ValueError("run_trace_payload needs a recorder, a result, or a counter")

    events: list[dict[str, Any]] = []
    if result is not None:
        events.extend(trace_events(result, max_ranks=max_ranks))
    if recorder is not None:
        events.extend(wall_trace_events(recorder))
        if isinstance(recorder, SpanRecorder):
            events.extend(span_tree_events(recorder))
    if registry is not None:
        from ..telemetry import metric_trace_events

        events.extend(metric_trace_events(registry, result=result))

    run_meta: dict[str, Any] = {}
    phases: dict[str, float] = {}
    source = result if result is not None else counter
    if source is not None:
        t = source.timing
        phases = {
            "parse_s": t.parse,
            "exchange_s": t.exchange,
            "count_s": t.count,
            "total_s": t.total,
        }
        run_meta = {
            "backend": source.backend,
            "config": source.config.describe(),
            "mode": source.config.mode,
            "k": source.config.k,
            "cluster": source.cluster.name,
            "ranks": source.cluster.n_ranks,
        }
        if counter is not None:
            run_meta["batches"] = counter.n_batches
            run_meta["total_kmers"] = counter.total_kmers

    wall: dict[str, Any] = {}
    if recorder is not None and len(recorder):
        wall = {
            "busy_seconds": recorder.busy_seconds(),
            "elapsed_seconds": recorder.elapsed_seconds(),
            "overlap_factor": recorder.overlap_factor(),
        }

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "spans": span_payload(recorder) if isinstance(recorder, SpanRecorder) else [],
        "metadata": {
            "schema": TRACE_SCHEMA,
            "run": run_meta,
            "phases": phases,
            "wall": wall,
            "profile": profile_text,
        },
    }


def write_run_trace(
    path: str | Path,
    recorder: "WallClockRecorder | SpanRecorder | None",
    *,
    result: CountResult | None = None,
    counter: "DistributedCounter | None" = None,
    registry: Any | None = None,
    profile_text: str | None = None,
    max_ranks: int | None = 64,
) -> Path:
    """Write :func:`run_trace_payload` as JSON (the ``--trace`` output)."""
    path = Path(path)
    payload = run_trace_payload(
        recorder,
        result=result,
        counter=counter,
        registry=registry,
        profile_text=profile_text,
        max_ranks=max_ranks,
    )
    path.write_text(json.dumps(payload))
    return path
