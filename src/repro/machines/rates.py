"""Kernel calibration rates: CPU per-core throughputs and GPU per-item ops.

Canonical home of :class:`CpuRates` (previously ``repro.core.cpu_model``)
and :class:`GpuPipelineModel` (previously ``repro.core.gpu_model``); both
old modules re-export from here so existing imports keep working.  Moving
them below the substrates lets one :class:`repro.machines.MachineSpec`
carry the complete calibration of a machine — topology, device, and kernel
rates — in one declarative object.

CPU side: the paper's baseline is the CPU-only k-mer analysis of diBELLA
run with 42 MPI ranks per Summit node (Section V-A).  Fig. 3a gives its
end-to-end behaviour on H. sapiens 54X at 2688 cores: ~3,800 s excluding
I/O, almost all of it in parse and count — roughly 17k k-mers per second
per core for the full compute path, i.e. rates dominated by software
overheads (hash-table churn, buffer packing), not DRAM bandwidth.

GPU side: the virtual GPU charges kernels via
:class:`repro.gpu.TrafficEstimate`; the dominant term for these divergent,
atomic-heavy kernels is serialized per-thread work, carried by
``thread_ops`` against the device's effective ``op_rate``.  The op counts
are calibration constants chosen so modeled per-GPU rates land where the
paper measured them (Fig. 3b / Fig. 7b: ~12 ns/k-mer at the V100's
``op_rate`` of 1e11; Section V-C's 27-33% supermer parse and 23-27% count
overheads give the factored constants).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CpuRates", "power9_rates", "epyc_rates", "GpuPipelineModel"]


@dataclass(frozen=True)
class CpuRates:
    """Per-core effective throughputs for the CPU baseline pipeline.

    ``parse_rate``
        k-mers parsed + hashed + packed into send buffers, per second per
        core (Algorithm 1's PARSEKMER).
    ``count_rate``
        received k-mers inserted/incremented in the local hash table, per
        second per core (Algorithm 1's COUNTKMER).
    ``supermer_parse_factor`` / ``supermer_count_factor``
        multiplicative slowdowns when the CPU pipeline runs in supermer
        mode (minimizer scanning during parse; supermer->k-mer extraction
        during count).  Mirrors the GPU-side overheads the paper measures
        (Section V-C: 27-33% parse, 23-27% count).
    ``phase_overhead``
        fixed per-phase framework cost (buffer management, table setup,
        synchronization) independent of data volume; charged once per
        pipeline phase per round.

    Default calibration: Fig. 3a gives ~3,800 s for H. sapiens 54X
    (167e9 k-mers) on 2,688 cores with exchange a small slice, i.e. an
    effective combined parse+count throughput of ~17k k-mers/s/core; the
    40k/30k split reproduces that combined rate with parse somewhat faster
    than counting (counting pays hash-table cache misses).
    """

    parse_rate: float = 4.0e4
    count_rate: float = 3.0e4
    supermer_parse_factor: float = 1.30
    supermer_count_factor: float = 1.25
    phase_overhead: float = 0.5

    def __post_init__(self) -> None:
        if self.parse_rate <= 0 or self.count_rate <= 0:
            raise ValueError("rates must be positive")
        if self.supermer_parse_factor < 1.0 or self.supermer_count_factor < 1.0:
            raise ValueError("supermer factors are slowdowns and must be >= 1")
        if self.phase_overhead < 0:
            raise ValueError("phase_overhead must be non-negative")

    def parse_time(self, n_kmers: float, *, supermer_mode: bool = False) -> float:
        """Seconds for one rank to parse ``n_kmers`` windows (excl. overhead)."""
        if n_kmers < 0:
            raise ValueError("n_kmers must be non-negative")
        factor = self.supermer_parse_factor if supermer_mode else 1.0
        return n_kmers * factor / self.parse_rate

    def count_time(self, n_kmers: float, *, supermer_mode: bool = False) -> float:
        """Seconds for one rank to count ``n_kmers`` received instances."""
        if n_kmers < 0:
            raise ValueError("n_kmers must be non-negative")
        factor = self.supermer_count_factor if supermer_mode else 1.0
        return n_kmers * factor / self.count_rate

    def with_overrides(self, **kwargs: object) -> "CpuRates":
        """Copy with selected fields replaced (for calibration sweeps)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def power9_rates() -> CpuRates:
    """Rates calibrated to the Fig. 3a Summit Power9 measurement."""
    return CpuRates()


def epyc_rates() -> CpuRates:
    """A modern x86 server core (Zen-3 class): roughly 2x the Power9 rates.

    No paper measurement backs these; they exist for cross-machine what-if
    studies, scaled from the Summit calibration by typical per-core
    integer/cache throughput ratios.
    """
    return CpuRates(parse_rate=8.0e4, count_rate=6.0e4, phase_overhead=0.4)


@dataclass(frozen=True)
class GpuPipelineModel:
    """Per-item thread-op counts and fixed overheads for the GPU pipelines.

    With the V100 default ``op_rate = 1e11`` ops/s, ``ops_parse_kmer=1200``
    means 12 ns of serialized thread work per k-mer window — the calibrated
    effective cost of extracting, hashing, and atomically appending one
    k-mer to the outgoing buffer.

    * Fig. 3b / Fig. 7b imply the k-mer parse and count kernels each take
      ~5 s for H. sapiens 54X on 384 V100s, i.e. ~435M k-mers per GPU at
      ~85M k-mers/s -> ~12 ns/k-mer -> 1,200 ops at ``op_rate`` 1e11;
    * Section V-C: supermer construction raises parse time by ~27-33%
      (minimizer tracking per window position) and counting by ~23-27%
      (extracting k-mers from received supermers) — hence the factored
      constants;
    * the per-exchange fixed overhead models buffer management, counts
      exchange setup and the multi-launch choreography around MPI; it is
      calibrated so small-dataset 16-node runs show the paper's modest
      11-13x overall speedups (Fig. 6a) while being negligible against the
      large-run exchange times.
    """

    ops_parse_kmer: float = 1200.0
    ops_parse_supermer: float = 1560.0  # +30%: minimizer scan + register supermer build
    ops_count_kmer: float = 1200.0
    ops_extract_kmer: float = 300.0  # +25% on count: supermer -> k-mer unpacking
    exchange_overhead_s: float = 1.5  # per exchange round: buffers, counts alltoall, setup
    bytes_per_probe: float = 64.0  # one cache line per hash-table probe

    def __post_init__(self) -> None:
        if min(self.ops_parse_kmer, self.ops_parse_supermer, self.ops_count_kmer) <= 0:
            raise ValueError("op counts must be positive")
        if self.ops_extract_kmer < 0 or self.exchange_overhead_s < 0 or self.bytes_per_probe <= 0:
            raise ValueError("invalid model constants")
        if self.ops_parse_supermer < self.ops_parse_kmer:
            raise ValueError("supermer parse must cost at least as much as k-mer parse")

    def with_overrides(self, **kwargs: object) -> "GpuPipelineModel":
        """Copy with selected fields replaced (for calibration sweeps)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]
