"""Analysis tools: communication theory, load balance, and run anatomy.

The paper closes its supermer section with a volume analysis (Section IV-D)
using: D (input bytes), L (mean read length), k, s (mean supermer length),
and P (processors).  This module implements those formulas exactly, plus
the exact closed form of the supermer base-compression ratio the paper
approximates as "(s - k)x", and helpers that compare theory against a
pipeline run's measured traffic.

The second half analyzes recorded span trees (``EngineOptions(trace=)`` /
``repro analyze``): per-stage straggler statistics with barrier-wait
attribution, the wall critical path per round, and the wall-vs-model
divergence table.  These functions operate on the plain span dicts of
:func:`repro.telemetry.spans.span_payload` (also embedded in a
``repro-trace/1`` file under ``"spans"``), so a saved trace is all they
need — no live run objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.reads import ReadSet
from .results import CountResult, LoadStats

__all__ = [
    "CommunicationTheory",
    "theory_for",
    "base_compression_exact",
    "items_per_supermer",
    "expected_kmers_per_supermer",
    "imbalance_from_result",
    "PhaseStats",
    "model_phase_of",
    "phase_stragglers",
    "critical_path",
    "wall_model_divergence",
    "analyze_spans",
]


@dataclass(frozen=True)
class CommunicationTheory:
    """Section IV-D's symbolic quantities, evaluated for one input.

    All volumes are per-processor communication volumes in *items x item
    size* units, following the paper's O(...) expressions with the constant
    factors kept.
    """

    total_bases: float  # D, measured in bases (the paper's "input size")
    mean_read_length: float  # L
    k: int
    mean_supermer_length: float  # s
    n_procs: int  # P

    @property
    def n_reads(self) -> float:
        return self.total_bases / self.mean_read_length

    @property
    def total_kmers(self) -> float:
        """K ~= (D/L) * (L - k + 1)."""
        return self.n_reads * max(self.mean_read_length - self.k + 1, 0.0)

    @property
    def total_supermers(self) -> float:
        """S ~= K / (s - k + 1): each supermer covers s-k+1 k-mers."""
        span = max(self.mean_supermer_length - self.k + 1, 1.0)
        return self.total_kmers / span

    def kmer_volume_per_proc(self) -> float:
        """O((P-1)/P * K/P * k) — bases shipped per processor, k-mer mode."""
        p = self.n_procs
        return (p - 1) / p * self.total_kmers / p * self.k

    def supermer_volume_per_proc(self) -> float:
        """O((P-1)/P * S/P * s) — bases shipped per processor, supermer mode."""
        p = self.n_procs
        return (p - 1) / p * self.total_supermers / p * self.mean_supermer_length

    def predicted_reduction(self) -> float:
        """Exact base-volume reduction: k * (s - k + 1) / s.

        The paper quotes this as "~(s - k)x" and illustrates with k=8,
        s=11 -> 2.90x; the exact form gives 8*4/11 = 2.91 for the same
        example and is what the formulas above imply.
        """
        return base_compression_exact(self.k, self.mean_supermer_length)


def base_compression_exact(k: int, s: float) -> float:
    """Base-volume ratio (k-mer mode / supermer mode) for mean length s."""
    if s < k:
        raise ValueError("mean supermer length must be >= k")
    return k * (s - k + 1) / s


def items_per_supermer(k: int, s: float) -> float:
    """Item-count ratio (k-mers per supermer) = s - k + 1 (Table II's lever)."""
    if s < k:
        raise ValueError("mean supermer length must be >= k")
    return s - k + 1


def expected_kmers_per_supermer(k: int, m: int, window: int | None = None) -> float:
    """Predicted mean supermer size (in k-mers) for random sequence.

    The paper notes "it is hard to come up with an exact communication
    bound" (Section IV-D); for i.i.d. random sequence there is a classic
    closed form.  A k-mer contains ``w = k - m + 1`` m-mers, and the
    density of minimizer *changes* between adjacent k-mers is ``2/(w + 1)``
    (the minimizer-density result of Roberts et al. / Marcais et al.), so
    unbounded supermers average ``(w + 1)/2`` k-mers.  The GPU window adds
    a deterministic break every ``window`` k-mers (Section IV-B); treating
    both as independent renewal processes gives::

        E[k-mers per supermer] ~= 1 / (2/(w+1) + 1/window)

    For the paper's configuration (k=17, m=7, window=15) this predicts
    ~4.3, matching both our measurements (4.25) and the stochastic reading
    of Table II.
    """
    if not 1 <= m < k:
        raise ValueError("need 1 <= m < k")
    w = k - m + 1
    change_rate = 2.0 / (w + 1)
    if window is not None:
        if window < 1:
            raise ValueError("window must be positive")
        change_rate += 1.0 / window
    return 1.0 / change_rate


def theory_for(reads: ReadSet, k: int, mean_supermer_length: float, n_procs: int) -> CommunicationTheory:
    """Build the Section IV-D model from a concrete read set."""
    if reads.n_reads == 0:
        raise ValueError("empty read set")
    return CommunicationTheory(
        total_bases=float(reads.total_bases),
        mean_read_length=float(reads.total_bases / reads.n_reads),
        k=k,
        mean_supermer_length=float(mean_supermer_length),
        n_procs=n_procs,
    )


def imbalance_from_result(result: CountResult) -> dict[str, object]:
    """Table III row for one run: min/max/avg received k-mers + imbalance."""
    loads: LoadStats = result.load_stats()
    return {
        "config": result.config.describe(),
        "ranks": result.cluster.n_ranks,
        "avg_kmers": loads.mean_load,
        "min_kmers": loads.min_load,
        "max_kmers": loads.max_load,
        "load_imbalance": loads.imbalance,
    }


def node_level_loads(result: CountResult) -> np.ndarray:
    """Received k-mers aggregated per node (for topology-aware views)."""
    nodes = result.cluster.node_map()
    out = np.zeros(result.cluster.n_nodes, dtype=np.int64)
    np.add.at(out, nodes, result.received_kmers)
    return out


# ---------------------------------------------------------------------------
# Run anatomy: span-tree analysis (critical path, stragglers, divergence)
# ---------------------------------------------------------------------------

#: The model timing's phase buckets, in pipeline order.
_MODEL_PHASES = ("parse", "exchange", "count", "other")


def _normalize_phases(model_phases: dict[str, float]) -> dict[str, float]:
    """Accept both bare phase keys and the trace metadata's ``*_s`` keys."""
    return {
        p: float(model_phases.get(p, model_phases.get(f"{p}_s", 0.0))) for p in _MODEL_PHASES
    }


def model_phase_of(name: str) -> str:
    """Map a work-span name to the model timing's phase bucket.

    Leaf names vary by execution strategy (``parse`` vs ``fused:parse``,
    ``exchange-round1`` vs ``spill:spool-round1``); this folds them all
    onto the :class:`~repro.core.results.PhaseTiming` axes so wall spans
    and model phases line up in the divergence table.  Merge and run-write
    work has no model phase and maps to ``"other"``.
    """
    base = name.split("-round")[0]
    if base.endswith("parse"):
        return "parse"
    if base in ("exchange", "fused:exchange", "spill:spool", "spill:read"):
        return "exchange"
    if base.endswith("count"):
        return "count"
    return "other"


@dataclass(frozen=True)
class PhaseStats:
    """Straggler statistics for one stage group (the spans under one region).

    ``barrier_wait_s`` is the bulk-synchronous idle time the stage's
    barrier induces: each rank waits ``max - t_r`` for the slowest rank,
    so the group's total wasted wall is ``sum(max - t_r)``.  Whole-cluster
    superstep blocks (fused/spill spool) have one span, so their barrier
    wait is zero by construction — the imbalance is inside the block.
    """

    path: str  # region path, e.g. "round0/exchange" or "parse"
    phase: str  # model phase bucket (parse/exchange/count/other)
    n: int  # spans in the group (ranks, for per-rank stages)
    max_s: float
    mean_s: float
    total_s: float
    imbalance: float  # max/mean (1.0 = perfectly balanced)
    bottleneck_rank: int | None  # rank of the slowest span
    barrier_wait_s: float  # sum over ranks of (max - t_r)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "phase": self.phase,
            "n": self.n,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
            "total_s": self.total_s,
            "imbalance": self.imbalance,
            "bottleneck_rank": self.bottleneck_rank,
            "barrier_wait_s": self.barrier_wait_s,
        }


def _span_index(spans: list[dict]) -> dict[object, dict]:
    return {s["id"]: s for s in spans}


def _region_path(span: dict, by_id: dict[object, dict]) -> str:
    """Slash-joined ancestor names, root (the ``run`` region) omitted."""
    names: list[str] = []
    cur = span
    while cur is not None:
        parent = by_id.get(cur["parent"])
        if parent is not None:  # drop the root region's name
            names.append(cur["name"])
        cur = parent
    return "/".join(reversed(names))


def _work_groups(spans: list[dict]) -> list[tuple[str, list[dict]]]:
    """Work leaves grouped by enclosing region path, in start-time order.

    Leaves whose parent is missing (a flat :class:`WallClockRecorder`
    export, or a truncated payload) group under their own base name, so
    the analysis still works on hierarchy-free span lists.
    """
    by_id = _span_index(spans)
    groups: dict[str, list[dict]] = {}
    order: dict[str, float] = {}
    for s in spans:
        if s["cat"] != "work":
            continue
        parent = by_id.get(s["parent"])
        key = _region_path(parent, by_id) if parent is not None else s["name"].split("-round")[0]
        groups.setdefault(key, []).append(s)
        order.setdefault(key, s["start_s"])
    return sorted(groups.items(), key=lambda kv: order[kv[0]])


def phase_stragglers(spans: list[dict]) -> list[PhaseStats]:
    """Per-stage straggler statistics over a span payload.

    Groups work leaves by their enclosing region path (``round0/exchange``,
    ``parse``, ...) and reduces each group across ranks.  Output order is
    execution order (first span start per group).
    """
    out: list[PhaseStats] = []
    for path, group in _work_groups(spans):
        durs = [max(s["end_s"] - s["start_s"], 0.0) for s in group]
        mx = max(durs)
        mean = sum(durs) / len(durs)
        slowest = group[durs.index(mx)]
        out.append(
            PhaseStats(
                path=path,
                phase=model_phase_of(group[0]["name"]),
                n=len(group),
                max_s=mx,
                mean_s=mean,
                total_s=sum(durs),
                imbalance=(mx / mean) if mean > 0 else 1.0,
                bottleneck_rank=slowest.get("rank"),
                barrier_wait_s=sum(mx - d for d in durs),
            )
        )
    return out


def critical_path(spans: list[dict]) -> dict[str, object]:
    """Wall critical path of a bulk-synchronous run, from its span tree.

    Under the BSP execution model every stage ends at a barrier, so the
    run's critical path is the sum over stage groups of the slowest rank's
    time, and each round's dominant stage is the one whose max is largest.
    Returns ``{"wall_s", "phases", "dominant", "rounds"}`` where ``phases``
    folds the stage maxima onto the model phase buckets.
    """
    stats = phase_stragglers(spans)
    phases = {p: 0.0 for p in _MODEL_PHASES}
    for st in stats:
        phases[st.phase] += st.max_s
    rounds: dict[str, dict[str, object]] = {}
    for st in stats:
        head, _, tail = st.path.partition("/")
        if not tail:
            continue  # top-level stage (parse/merge), not inside a round
        entry = rounds.setdefault(head, {"name": head, "stages": {}, "wall_s": 0.0})
        entry["stages"][tail] = entry["stages"].get(tail, 0.0) + st.max_s
        entry["wall_s"] += st.max_s
    for entry in rounds.values():
        entry["dominant"] = max(entry["stages"], key=entry["stages"].get) if entry["stages"] else None
    timed = {p: t for p, t in phases.items() if t > 0}
    return {
        "wall_s": sum(st.max_s for st in stats),
        "phases": phases,
        "dominant": max(timed, key=timed.get) if timed else None,
        "rounds": [rounds[k] for k in sorted(rounds)],
    }


def wall_model_divergence(
    spans: list[dict], model_phases: dict[str, float]
) -> list[dict[str, object]]:
    """Wall-vs-model table: one row per model phase, with the ratio.

    ``model_phases`` is the run's modeled phase timing (the trace file's
    ``metadata.phases``, or ``result.timing.as_dict()``).  Wall seconds
    are the critical-path contributions (per-stage max over ranks), the
    like-for-like counterpart of the model's bulk-synchronous phase times.
    A large ratio means the machine model charges far more (or less) for
    the phase than this host's actual execution — expected for network
    phases simulated on one node, interesting for compute phases.
    """
    wall = critical_path(spans)["phases"]
    model = _normalize_phases(model_phases)
    rows = []
    for phase in _MODEL_PHASES:
        model_s = model[phase]
        wall_s = float(wall.get(phase, 0.0))
        if model_s == 0.0 and wall_s == 0.0:
            continue
        rows.append(
            {
                "phase": phase,
                "model_s": model_s,
                "wall_s": wall_s,
                "ratio": (model_s / wall_s) if wall_s > 0 else float("inf"),
            }
        )
    return rows


def analyze_spans(
    spans: list[dict], model_phases: dict[str, float] | None = None
) -> dict[str, object]:
    """Full run-anatomy report over a span payload (the ``repro analyze`` core).

    Returns a plain-JSON dict: span counts and wall elapsed, per-stage
    straggler statistics, the wall critical path per round, and — when the
    model phase timing is supplied — the model-side critical path (whose
    ``dominant`` names the same phase the RunReport totals imply) plus the
    wall-vs-model divergence table.
    """
    stats = phase_stragglers(spans)
    out: dict[str, object] = {
        "n_spans": len(spans),
        "n_work_spans": sum(1 for s in spans if s["cat"] == "work"),
        "elapsed_s": (
            max(s["end_s"] for s in spans) - min(s["start_s"] for s in spans) if spans else 0.0
        ),
        "stages": [st.as_dict() for st in stats],
        "critical_path": critical_path(spans),
        "barrier_wait_s": sum(st.barrier_wait_s for st in stats),
    }
    if model_phases is not None:
        model = _normalize_phases(model_phases)
        timed = {p: v for p, v in model.items() if v > 0}
        out["model"] = {
            "phases": model,
            "dominant": max(timed, key=timed.get) if timed else None,
        }
        out["divergence"] = wall_model_divergence(spans, model_phases)
    return out
