"""Process-wide, context-scoped active registry.

The instrumented layers (collectives, communicator, hash table, kernels,
worker pools) are deep inside the call graph and cannot reasonably thread a
registry parameter through every signature.  Instead, a run installs its
registry as the *active* one for the duration — ``session(registry)`` — and
instrumentation points ask :func:`active` and no-op when none is installed.

The slot is a plain process global (not a ``contextvars`` variable) on
purpose: the engine's worker pools run rank bodies on long-lived executor
threads, which do not inherit the submitting context, but *do* see module
globals.  Sessions nest — the inner session shadows the outer one and the
outer is restored on exit — and installation is lock-protected so
concurrent engine runs fail loudly rather than silently cross-feeding.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from .registry import MetricRegistry

__all__ = ["active", "session", "swap_active"]

_lock = threading.Lock()
_stack: list[MetricRegistry] = []


def active() -> MetricRegistry | None:
    """The registry installed by the innermost live session, if any."""
    stack = _stack
    return stack[-1] if stack else None


def swap_active(registry: MetricRegistry) -> MetricRegistry | None:
    """Replace the innermost live session's registry; returns the old one.

    No-op (returns ``None``) when no session is live.  This exists for the
    process execution substrate: a forked worker inherits the parent's
    session stack copy-on-write, swaps in a fresh registry so its chunk's
    instrumentation accumulates separately, and ships that registry's
    dumped state back for the parent to merge
    (:meth:`MetricRegistry.merge_state`).  Workers are single-threaded, so
    the swap cannot race with instrumentation in the swapping process.
    """
    with _lock:
        if not _stack:
            return None
        old = _stack[-1]
        _stack[-1] = registry
        return old


@contextmanager
def session(registry: MetricRegistry) -> Iterator[MetricRegistry]:
    """Install ``registry`` as the active one for the ``with`` body."""
    with _lock:
        _stack.append(registry)
    try:
        yield registry
    finally:
        with _lock:
            # Remove the most recent occurrence; robust to exotic unwind orders.
            for i in range(len(_stack) - 1, -1, -1):
                if _stack[i] is registry:
                    del _stack[i]
                    break
