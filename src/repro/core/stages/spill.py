"""Out-of-core execution tier: spill-to-disk exchange + external merge.

Every other execution path holds the whole run in RAM — the parsed send
buffers, every rank's received buffer, and all P hash-table partitions
live simultaneously, which caps the dataset registry at tiny scales.
Gerbil-style two-phase counting (PAPERS.md) splits that: phase one hashes
reads into minimizer-keyed temporary partition files, phase two counts
one partition at a time.  We already partition by minimizer shard, so
this module adds the two missing pieces:

* :class:`SpillExchange` — a sibling of
  :class:`~repro.core.stages.standard.AlltoallvExchange` that writes each
  round's destination-ordered send segments to one partition file per
  (destination rank, round) in a spool directory, instead of materializing
  in-memory receive buffers.  Byte/item traffic accounting and the modeled
  exchange time are computed through the identical code paths, so every
  model observable matches the in-memory exchange bit for bit; the
  returned receive "buffers" are read-only memory maps of the partition
  files.

* :class:`SpillPipeline` — the out-of-core run loop bound to a
  :class:`~repro.core.stages.scheduler.RoundScheduler`.  The one-shot run
  spools all rounds first, then streams the count phase one rank at a
  time: rank r's partitions are memory-mapped round by round into the
  standard count stage, the finished table partition is dumped as a
  sorted ``(key, count)`` run file, and the table is freed before rank
  r+1 starts.  The final spectrum is produced by an external k-way merge
  of the sorted runs (a heap orders the run cursors, cf. the ``heapq``
  idiom in :mod:`repro.ext.balanced`), so peak residency is one rank's
  partition + table, not P of them.

Bit-identity contract: spectrum, timing floats, per-rank model times,
traffic records, counts matrices, and InsertStats all equal the in-memory
staged path's (``tests/test_spill.py`` enforces it, and
``benchmarks/bench_guard.py`` gates it in CI).  Only ``wall=True``
telemetry families (``spill_*``) differ.  Compositions with custom
exchange/merge stages fall back to the in-memory scheduler with an
``engine.spill.fallback`` event, as does a simultaneous ``fused=True``
request (the fused path keeps whole-cluster buffers resident, which is
exactly what spilling exists to avoid).
"""

from __future__ import annotations

import heapq
import shutil
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from ...gpu.hashtable import DeviceHashTable, InsertStats
from ...kmers.spectrum import KmerSpectrum
from ...mpi.stats import TrafficStats
from ...telemetry import active
from ..results import CountResult, PhaseTiming
from ..tracing import recording_region
from .buffers import ExchangeOutcome, RankParse
from .registry import StageComposition
from .standard import AlltoallvExchange, SpectrumMerge, exchange_time_model, verify_exchange

__all__ = [
    "SpillExchange",
    "SpillPipeline",
    "SpillSpool",
    "external_merge",
    "supports_spill",
]

#: Keys loaded from each sorted run per refill during the external merge.
MERGE_BLOCK_KEYS = 1 << 16


def supports_spill(comp: StageComposition) -> bool:
    """Whether the composition can run out of core.

    The spill path substitutes the exchange (partition files for receive
    buffers) and the merge (external k-way merge for the in-memory
    ``np.unique``), so both must be the standard classes whose semantics
    it reproduces.  Parse, partition, count, and substrate are driven
    through their ordinary seams and may be anything; plugins act through
    the standard hooks, which the spill path honours.
    """
    return type(comp.exchange) is AlltoallvExchange and type(comp.merge) is SpectrumMerge


def _record_comm_telemetry(p: int) -> None:
    """The collective-layer model counters one alltoallv emits."""
    reg = active()
    if reg is not None:
        reg.counter("comm_alltoallv_calls_total", "alltoallv_segments invocations").inc()
        reg.counter("comm_messages_total", "Rank-to-rank messages carried by collectives").inc(
            max(p * (p - 1), 0)
        )


def _spill_counter(name: str, desc: str, amount: int) -> None:
    reg = active()
    if reg is not None:
        reg.counter(name, desc, wall=True).inc(amount)


class SpillSpool:
    """One run's spool directory: partition files keyed by (label, rank).

    Partition payloads are raw little-endian dtype bytes (``tofile``
    format), one file per destination rank per exchange label, with an
    optional parallel ``.lens`` file for supermer length bytes.  Empty
    partitions create no file.
    """

    def __init__(self, base_dir: Path) -> None:
        base_dir.mkdir(parents=True, exist_ok=True)
        self.dir = Path(tempfile.mkdtemp(prefix="spool-", dir=base_dir))
        self.bytes_written = 0
        self.bytes_read = 0

    def partition_path(self, label: str, rank: int, *, lens: bool = False) -> Path:
        suffix = "lens" if lens else "data"
        return self.dir / f"{label}.dst{rank}.{suffix}"

    def write_partition(
        self,
        label: str,
        rank: int,
        segments: list[np.ndarray],
        *,
        lens: bool = False,
    ) -> int:
        """Append ``segments`` (in source-rank order) to one partition file."""
        total = sum(int(seg.shape[0]) for seg in segments)
        if total == 0:
            return 0
        path = self.partition_path(label, rank, lens=lens)
        nbytes = 0
        with open(path, "wb") as fh:
            for seg in segments:
                if seg.shape[0]:
                    np.ascontiguousarray(seg).tofile(fh)
                    nbytes += int(seg.nbytes)
        self.bytes_written += nbytes
        _spill_counter("spill_bytes_written_total", "Bytes written to spool partition files", nbytes)
        return nbytes

    def map_partition(
        self, label: str, rank: int, dtype, *, lens: bool = False, account: bool = True
    ) -> np.ndarray:
        """Memory-map one partition back (empty array if nothing was spooled).

        ``account=False`` skips the read-byte accounting — used when the
        map is handed out only for checksum verification and the real
        streamed read happens (and is accounted) later.
        """
        path = self.partition_path(label, rank, lens=lens)
        if not path.exists():
            return np.empty(0, dtype=dtype)
        data = np.memmap(path, dtype=dtype, mode="r")
        if account:
            self.bytes_read += int(data.nbytes)
            _spill_counter(
                "spill_bytes_read_total", "Bytes read back from spool files", int(data.nbytes)
            )
        return data

    def drop_partitions(self, label: str, rank: int) -> None:
        """Delete one rank's partition files for a label (after counting)."""
        for lens in (False, True):
            path = self.partition_path(label, rank, lens=lens)
            if path.exists():
                path.unlink()

    def write_run(self, rank: int, keys: np.ndarray, counts: np.ndarray) -> tuple[Path, Path]:
        """Persist one rank's sorted (key, count) run for the external merge."""
        kpath = self.dir / f"run.r{rank}.keys.npy"
        cpath = self.dir / f"run.r{rank}.counts.npy"
        np.save(kpath, keys)
        np.save(cpath, counts)
        nbytes = int(keys.nbytes + counts.nbytes)
        self.bytes_written += nbytes
        _spill_counter("spill_bytes_written_total", "Bytes written to spool partition files", nbytes)
        _spill_counter("spill_merge_runs_total", "Sorted runs produced for the external merge", 1)
        return kpath, cpath

    def map_run(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        keys = np.load(self.dir / f"run.r{rank}.keys.npy", mmap_mode="r")
        counts = np.load(self.dir / f"run.r{rank}.counts.npy", mmap_mode="r")
        nbytes = int(keys.nbytes + counts.nbytes)
        self.bytes_read += nbytes
        _spill_counter("spill_bytes_read_total", "Bytes read back from spool files", nbytes)
        return keys, counts

    def close(self) -> None:
        shutil.rmtree(self.dir, ignore_errors=True)


class SpillExchange:
    """Counts alltoall + payload "alltoallv" onto disk partitions.

    Accounting twin of :class:`AlltoallvExchange`: the byte/item traffic
    record, the collective-layer telemetry counters, the end-to-end
    checksum verification, and the modeled phase time are all computed
    exactly as the in-memory exchange computes them.  Only the data
    placement differs — each destination's segments are appended to a
    per-(rank, label) partition file, and ``recv_data`` comes back as
    read-only memory maps.
    """

    def __init__(self, spool: SpillSpool, *, account_reads: bool = True) -> None:
        self.spool = spool
        # False when the one-shot run's streamed count phase re-maps the
        # partitions itself (with accounting); the maps returned here then
        # exist only for the checksum pass.
        self.account_reads = account_reads

    def exchange(self, send_data, send_lengths, send_counts, label, ctx) -> ExchangeOutcome:
        p = len(send_data)
        wire = ctx.wire_bytes
        counts_matrix = np.zeros((p, p), dtype=np.int64)
        offsets = []
        for src in range(p):
            counts = np.ascontiguousarray(send_counts[src], dtype=np.int64)
            if counts.shape != (p,):
                raise ValueError(f"rank {src} send_counts must have shape ({p},)")
            if int(counts.sum()) != send_data[src].shape[0]:
                raise ValueError(
                    f"rank {src}: counts sum {int(counts.sum())} != data length {send_data[src].shape[0]}"
                )
            counts_matrix[src] = counts
            off = np.zeros(p + 1, dtype=np.int64)
            np.cumsum(counts, out=off[1:])
            offsets.append(off)

        # Model accounting first, identical to alltoallv_segments: one
        # logical alltoallv for the payload (recorded into the traffic
        # stats), and in supermer mode a second one for the length bytes
        # (counters only; its bytes ride in the payload's `wire` size).
        _record_comm_telemetry(p)
        if ctx.stats is not None:
            bytes_matrix = (counts_matrix * float(wire)).astype(np.int64)
            ctx.stats.record("alltoallv", bytes_matrix, label=label, items_matrix=counts_matrix)
        if send_lengths is not None:
            _record_comm_telemetry(p)

        # The disk form of recv_data[dst]: every source's segment for dst,
        # in source-rank order — byte-identical to the in-memory gather.
        for dst in range(p):
            segs = [send_data[src][offsets[src][dst] : offsets[src][dst + 1]] for src in range(p)]
            self.spool.write_partition(label, dst, segs)
            if send_lengths is not None:
                lens = [
                    send_lengths[src][offsets[src][dst] : offsets[src][dst + 1]] for src in range(p)
                ]
                self.spool.write_partition(label, dst, lens, lens=True)
        _spill_counter("spill_partitions_total", "Exchange partitions spooled to disk", p)

        recv_data = [
            self.spool.map_partition(label, dst, send_data[0].dtype, account=self.account_reads)
            for dst in range(p)
        ]
        recv_lengths = None
        if send_lengths is not None:
            recv_lengths = [
                self.spool.map_partition(label, dst, np.uint8, lens=True, account=self.account_reads)
                for dst in range(p)
            ]

        do_verify = ctx.verify if ctx.verify is not None else ctx.opts.verify_exchange
        if do_verify:
            verify_exchange(send_data, recv_data, counts_matrix, label)

        seconds, t_a2av, t_stage = exchange_time_model(counts_matrix, ctx)
        return ExchangeOutcome(
            recv_data=recv_data,
            recv_lengths=recv_lengths,
            counts_matrix=counts_matrix,
            seconds=seconds,
            alltoallv_seconds=t_a2av,
            staging_seconds=t_stage,
        )


def external_merge(
    runs: list[tuple[np.ndarray, np.ndarray]],
    k: int,
    *,
    block: int = MERGE_BLOCK_KEYS,
) -> KmerSpectrum:
    """External k-way merge of sorted ``(keys, counts)`` runs.

    Each run's keys are strictly increasing (a dumped table partition);
    runs may share keys (canonical supermer mode splits a canonical k-mer
    across two owners), so equal keys aggregate.  A heap of the run
    cursors' last-loaded keys yields the *safe emission bound*: every
    instance of a key ``<= bound`` is already loaded, because each run's
    unloaded keys exceed its last-loaded key.  Chunks are aggregated with
    the same ``np.unique`` + weighted ``bincount`` the in-memory
    :class:`SpectrumMerge` uses, so the concatenated chunk outputs equal
    the whole-array merge exactly.
    """
    # per run: [keys, counts, lo, head_keys, head_counts, hp, generation]
    cursors = []
    heap: list[tuple[int, int, int]] = []  # (last loaded key, generation, run index)

    def refill(i: int) -> None:
        cur = cursors[i]
        keys, counts, lo = cur[0], cur[1], cur[2]
        hi = min(lo + block, keys.shape[0])
        cur[3] = np.asarray(keys[lo:hi])
        cur[4] = np.asarray(counts[lo:hi])
        cur[2], cur[5] = hi, 0
        cur[6] += 1
        if hi < keys.shape[0]:  # more on disk: this head's last key bounds emission
            heapq.heappush(heap, (int(cur[3][-1]), cur[6], i))

    for keys, counts in runs:
        if keys.shape[0]:
            cursors.append([keys, counts, 0, None, None, 0, 0])
            refill(len(cursors) - 1)

    live = {i for i in range(len(cursors))}
    out_keys: list[np.ndarray] = []
    out_counts: list[np.ndarray] = []
    while live:
        # Drop stale heap entries: the cursor was dropped, fully loaded, or
        # refilled since the entry was pushed (its bound is already consumed).
        while heap and (
            heap[0][2] not in live
            or heap[0][1] != cursors[heap[0][2]][6]
            or cursors[heap[0][2]][2] >= cursors[heap[0][2]][0].shape[0]
        ):
            heapq.heappop(heap)
        bound = heap[0][0] if heap else None

        parts_k: list[np.ndarray] = []
        parts_c: list[np.ndarray] = []
        for i in sorted(live):
            cur = cursors[i]
            hk, hc, hp = cur[3], cur[4], cur[5]
            end = hk.shape[0] if bound is None else int(np.searchsorted(hk, bound, side="right"))
            if end > hp:
                parts_k.append(hk[hp:end])
                parts_c.append(hc[hp:end])
                cur[5] = end
        chunk_k = np.concatenate(parts_k) if parts_k else np.empty(0, dtype=np.uint64)
        chunk_c = np.concatenate(parts_c) if parts_c else np.empty(0, dtype=np.int64)
        if chunk_k.size:
            uniq, inverse = np.unique(chunk_k, return_inverse=True)
            merged = np.bincount(inverse, weights=chunk_c).astype(np.int64)
            out_keys.append(uniq)
            out_counts.append(merged)

        for i in list(live):
            cur = cursors[i]
            if cur[5] >= cur[3].shape[0]:  # head fully consumed
                if cur[2] < cur[0].shape[0]:
                    refill(i)
                else:
                    live.discard(i)

    if not out_keys:
        return KmerSpectrum(k=k, values=np.empty(0, dtype=np.uint64), counts=np.empty(0, dtype=np.int64))
    return KmerSpectrum(k=k, values=np.concatenate(out_keys), counts=np.concatenate(out_counts))


class SpillPipeline:
    """Out-of-core execution engine bound to one :class:`RoundScheduler`."""

    def __init__(self, scheduler) -> None:
        self.sched = scheduler

    def _spool(self) -> SpillSpool:
        return SpillSpool(Path(self.sched.opts.spill_dir))

    # -- one-shot run ------------------------------------------------

    def run_once(self, reads, recorder, reg) -> CountResult:
        from .scheduler import _round_slice, _rounds_for_memory

        sched = self.sched
        comp = sched.comp
        config = sched.config
        opts = sched.opts
        p = sched.cluster.n_ranks
        mult = opts.work_multiplier
        pool = sched._pool()
        spool = self._spool()
        try:
            stats = TrafficStats()
            sctx = sched._context(pool, stats, recorder, reg)
            exchange = SpillExchange(spool, account_reads=False)

            # ---- phase 1: parse, exactly as the in-memory staged path ----
            shards = sched._shard(reads)

            def _parse_one(r: int) -> RankParse:
                t0 = perf_counter()
                out = comp.substrate.parse_rank(shards[r], comp.parse, comp.partition, sctx)
                if recorder is not None:
                    recorder.record("parse", r, t0, perf_counter())
                return out

            with recording_region(recorder, "parse", cat="stage"):
                parsed: list[RankParse] = pool.map(_parse_one, range(p), recorder=recorder)
            t_parse = max(pr.time_s for pr in parsed)
            total_parsed_kmers = sum(pr.n_kmers_parsed for pr in parsed)

            wire = sctx.wire_bytes
            supermer_mode = sctx.supermer_mode
            n_rounds = max(
                config.n_rounds, _rounds_for_memory(parsed, p, wire, mult, opts, comp.backend)
            )

            # ---- phase 2: spool every round's partitions to disk ----
            counts_matrix_total = np.zeros((p, p), dtype=np.int64)
            t_exchange = 0.0
            t_alltoallv = 0.0
            staging_total = 0.0
            labels: list[str] = []
            for rnd in range(n_rounds):
                with recording_region(recorder, f"round{rnd}", cat="round", round=rnd):
                    round_send = [_round_slice(pr, rnd, n_rounds) for pr in parsed]
                    send_data = [rs[0] for rs in round_send]
                    send_lengths = [rs[1] for rs in round_send] if supermer_mode else None
                    send_counts = [rs[2] for rs in round_send]
                    label = f"{config.mode}-exchange" + (f"-round{rnd}" if n_rounds > 1 else "")
                    labels.append(label)
                    # The spool write is the spill path's exchange superstep:
                    # one whole-cluster block on the driving thread (rank 0
                    # wall row), like the fused path's supersteps.
                    spool_name = "spill:spool" + (f"-round{rnd}" if n_rounds > 1 else "")
                    n_traffic_before = len(stats.records)
                    with recording_region(recorder, "exchange", cat="stage", round=rnd) as ereg:
                        t0 = perf_counter()
                        outcome = exchange.exchange(send_data, send_lengths, send_counts, label, sctx)
                        if recorder is not None:
                            recorder.record(spool_name, 0, t0, perf_counter())
                        if ereg is not None:
                            ereg.note(
                                label=label,
                                traffic_records=[n_traffic_before, len(stats.records)],
                                items=int(outcome.counts_matrix.sum()),
                                model_seconds=outcome.seconds,
                            )
                    # outcome's receive views exist only for the checksum pass;
                    # the streamed count phase re-maps each rank's partition.
                    counts_matrix_total += outcome.counts_matrix
                    t_exchange += outcome.seconds
                    t_alltoallv += outcome.alltoallv_seconds
                    staging_total += outcome.staging_seconds
                    _round_metrics(reg, comp.backend, rnd, outcome)

            # The big destination-ordered send buffers are now on disk;
            # free them before the count phase so peak residency is one
            # rank's partition + table, not the whole parse output.
            capacity_hints = [max(64, pr.n_kmers_parsed // max(p, 1) + 16) for pr in parsed]
            per_rank_parse = np.array([pr.time_s for pr in parsed])
            supermer_bases = sum(pr.supermer_bases for pr in parsed)
            n_supermers = sum(pr.n_supermers for pr in parsed)
            del parsed, round_send, send_data, send_lengths

            # ---- phase 3: streamed count, one rank partition at a time ----
            # Each rank's stream is private in memory (its own fresh table)
            # and on disk (per-rank partition and run files), so the pool
            # may run rank streams concurrently on any substrate — peak
            # residency per worker is still one rank's partition + table.
            # InsertStats combination is associative, so the per-rank
            # grouping below reduces to exactly the serial (rank, round)
            # accumulation order.
            received_kmers = np.zeros(p, dtype=np.int64)
            per_rank_count = np.zeros(p, dtype=np.float64)
            insert_total = InsertStats.zero()
            table_entries = np.zeros(p, dtype=np.int64)
            table_load = np.zeros(p, dtype=np.float64)

            def _stream_one(r: int):
                table = DeviceHashTable(capacity_hint=capacity_hints[r], seed=config.table_seed)
                time_r = 0.0
                recv_r = 0
                ins_r = InsertStats.zero()
                for rnd, label in enumerate(labels):
                    recv = spool.map_partition(label, r, np.uint64)
                    lengths_r = (
                        spool.map_partition(label, r, np.uint8, lens=True)
                        if supermer_mode
                        else None
                    )
                    count_label = "count" + (f"-round{rnd}" if n_rounds > 1 else "")
                    t0 = perf_counter()
                    co = comp.substrate.count_rank(r, recv, lengths_r, table, comp.count, sctx)
                    if recorder is not None:
                        recorder.record(count_label, r, t0, perf_counter())
                    time_r += co.time_s
                    recv_r += co.n_instances
                    ins_r = ins_r.combined(co.insert_stats)
                    del recv, lengths_r
                for label in labels:
                    spool.drop_partitions(label, r)
                t0 = perf_counter()
                values, counts = table.items()
                for plugin in comp.merge.plugins:
                    values, counts = plugin.adjust_merge_items(values, counts)
                if values.size > 1 and not np.all(values[1:] > values[:-1]):
                    order = np.argsort(values, kind="stable")
                    values, counts = values[order], counts[order]
                spool.write_run(r, values, counts)
                if recorder is not None:
                    recorder.record("spill:run-write", r, t0, perf_counter())
                return time_r, recv_r, ins_r, table.n_entries, table.load_factor

            with recording_region(recorder, "count", cat="stage"):
                streamed = pool.map(_stream_one, range(p), recorder=recorder)
            for r, (time_r, recv_r, ins_r, entries_r, load_r) in enumerate(streamed):
                per_rank_count[r] = time_r
                received_kmers[r] = recv_r
                insert_total = insert_total.combined(ins_r)
                table_entries[r] = entries_r
                table_load[r] = load_r

            t_count = float(per_rank_count.max()) if p else 0.0

            # ---- phase 4: external merge of the sorted runs ----
            with recording_region(recorder, "merge", cat="stage"):
                t0 = perf_counter()
                spectrum = external_merge([spool.map_run(r) for r in range(p)], config.k)
                if recorder is not None:
                    recorder.record("spill:merge", 0, t0, perf_counter())
            if comp.conserves_kmers and spectrum.n_total != total_parsed_kmers:
                raise AssertionError(
                    f"pipeline lost k-mers: parsed {total_parsed_kmers}, counted {spectrum.n_total}"
                )

            exchanged_items = int(counts_matrix_total.sum())
            if reg is not None:
                backend = comp.backend
                for r in range(p):
                    reg.gauge("hashtable_entries", "Distinct keys per rank partition", rank=r).set(
                        int(table_entries[r])
                    )
                    reg.gauge("hashtable_load_factor", "Final load factor per rank", rank=r).set(
                        float(table_load[r])
                    )
                reg.counter("kmers_parsed_total", "k-mer instances parsed", engine=backend).inc(
                    total_parsed_kmers
                )
                if n_supermers:
                    reg.counter("supermers_total", "Supermers built", engine=backend).inc(n_supermers)
                    reg.counter(
                        "supermer_bases_total", "Bases covered by supermers", engine=backend
                    ).inc(supermer_bases)
            return CountResult(
                config=config,
                cluster=sched.cluster,
                backend=comp.backend,
                spectrum=spectrum,
                timing=PhaseTiming(parse=t_parse, exchange=t_exchange, count=t_count),
                per_rank_parse=per_rank_parse,
                per_rank_count=per_rank_count,
                received_kmers=received_kmers,
                exchanged_items=exchanged_items,
                exchanged_bytes=int(exchanged_items * wire),
                counts_matrix=counts_matrix_total,
                work_multiplier=mult,
                traffic=sctx.stats,
                insert_stats=insert_total,
                mean_supermer_length=(supermer_bases / n_supermers) if n_supermers else 0.0,
                staging_seconds=staging_total,
                alltoallv_seconds=t_alltoallv,
                n_rounds_used=n_rounds,
            )
        finally:
            spool.close()

    # -- streamed batches --------------------------------------------

    def run_batch(self, reads, state) -> PhaseTiming:
        """One spilled batch folded into persistent ``state``.

        The exchange partitions go through the spool and the count phase
        walks them rank by rank as memory maps, so the batch's receive
        buffers never reside in RAM; the persistent tables (the cross-batch
        state itself) stay in memory.  Observables are bit-identical to the
        in-memory ``RoundScheduler.run_batch``.
        """
        sched = self.sched
        comp = sched.comp
        config = sched.config
        p = sched.cluster.n_ranks
        pool = sched._pool()
        recorder = sched.opts.span_recorder
        sctx = sched._context(pool, state.traffic, recorder, None, verify=False)
        spool = self._spool()
        try:
            exchange = SpillExchange(spool, account_reads=False)
            sched._prepare_plugins(reads)
            shards = sched._shard(reads)

            def _parse_one(r: int):
                t0 = perf_counter()
                out = comp.substrate.parse_rank(shards[r], comp.parse, comp.partition, sctx)
                if recorder is not None:
                    recorder.record("parse", r, t0, perf_counter())
                return out

            with recording_region(recorder, "parse", cat="stage"):
                parsed = pool.map(_parse_one, range(p), recorder=recorder)
            t_parse = max(pr.time_s for pr in parsed)

            supermer_mode = sctx.supermer_mode
            label = f"{config.mode}-batch{state.n_batches}"
            n_traffic_before = len(state.traffic.records)
            with recording_region(recorder, "exchange", cat="stage") as ereg:
                t0 = perf_counter()
                outcome = exchange.exchange(
                    [pr.data for pr in parsed],
                    [pr.lengths for pr in parsed] if supermer_mode else None,
                    [pr.counts for pr in parsed],
                    label,
                    sctx,
                )
                if recorder is not None:
                    recorder.record("spill:spool", 0, t0, perf_counter())
                if ereg is not None:
                    ereg.note(
                        label=label,
                        traffic_records=[n_traffic_before, len(state.traffic.records)],
                        items=int(outcome.counts_matrix.sum()),
                        model_seconds=outcome.seconds,
                    )
            counts_matrix = outcome.counts_matrix
            exch_seconds = outcome.seconds
            # The batch's send buffers are on disk now: free them (and the
            # outcome's verification maps) before the streamed count.
            del parsed, outcome

            # Rank streams are private (own partition files, own persistent
            # table), so the pool may run them concurrently; as on every
            # other path, the mutated table travels back with the outcome
            # for out-of-process substrates.
            def _count_one(r: int):
                recv = spool.map_partition(label, r, np.uint64)
                lengths_r = (
                    spool.map_partition(label, r, np.uint8, lens=True) if supermer_mode else None
                )
                t0 = perf_counter()
                co = comp.substrate.count_rank(
                    r, recv, lengths_r, state.tables[r], comp.count, sctx
                )
                if recorder is not None:
                    recorder.record("count", r, t0, perf_counter())
                del recv, lengths_r
                spool.drop_partitions(label, r)
                return co, state.tables[r]

            per_rank_count = np.zeros(p, dtype=np.float64)
            with recording_region(recorder, "count", cat="stage"):
                counted = pool.map(_count_one, range(p), recorder=recorder)
            for r, (co, table) in enumerate(counted):
                state.tables[r] = table
                per_rank_count[r] = co.time_s
                state.received_kmers[r] += co.n_instances
                state.insert_stats = state.insert_stats.combined(co.insert_stats)

            batch_timing = PhaseTiming(
                parse=t_parse, exchange=exch_seconds, count=float(per_rank_count.max()) if p else 0.0
            )
            state.timing = state.timing.add(batch_timing)
            state.exchanged_items += int(counts_matrix.sum())
            state.n_batches += 1
            return batch_timing
        finally:
            spool.close()


def _round_metrics(reg, backend: str, rnd: int, outcome: ExchangeOutcome) -> None:
    """The scheduler's per-round exchange metrics, verbatim."""
    if reg is None:
        return
    reg.counter("exchange_rounds_total", "Exchange/count rounds executed", engine=backend).inc()
    reg.counter(
        "exchange_model_seconds_total",
        "Modeled exchange seconds (overhead + network + staging)",
        engine=backend,
        round=rnd,
    ).inc(outcome.seconds)
    reg.counter(
        "alltoallv_model_seconds_total",
        "Modeled MPI_Alltoallv routine seconds",
        engine=backend,
        round=rnd,
    ).inc(outcome.alltoallv_seconds)
    reg.counter(
        "staging_model_seconds_total",
        "Modeled host<->device staging seconds",
        engine=backend,
        round=rnd,
    ).inc(outcome.staging_seconds)
    reg.counter(
        "exchange_items_round_total",
        "Items exchanged per round",
        engine=backend,
        round=rnd,
    ).inc(int(outcome.counts_matrix.sum()))
