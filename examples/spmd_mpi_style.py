#!/usr/bin/env python
"""Writing against the MPI-style SPMD API directly (advanced).

The drivers in :mod:`repro.core` run the paper's pipelines on the
deterministic BSP engine.  This example shows the other substrate: the
threaded SPMD world, where every rank runs the same program concurrently
with an mpi4py-flavoured communicator — useful for prototyping new
distributed k-mer algorithms before committing them to the engine.

The program below is a compact Algorithm 1: each rank parses its shard,
routes k-mers with ``comm.alltoallv``, counts locally, and rank 0 gathers
the global histogram.  The result is validated against the oracle.

Usage:  python examples/spmd_mpi_style.py
"""

from __future__ import annotations

import numpy as np

from repro import count_kmers_exact
from repro.dna.simulate import simulate_dataset
from repro.gpu import DeviceHashTable
from repro.hashing import KmerPartitioner
from repro.kmers import extract_kmers
from repro.mpi import run_spmd

K = 15
P = 8


def kmer_count_rank(comm, shard):
    """One rank of Algorithm 1, written as ordinary SPMD code."""
    # PARSEKMER: extract k-mers and find each one's owner processor.
    kmers = extract_kmers(shard, K)
    owners = KmerPartitioner(comm.size).owners(kmers)
    send = [kmers[owners == dst] for dst in range(comm.size)]

    # EXCHANGEKMER: the many-to-many exchange.
    received = comm.alltoallv(send)

    # COUNTKMER: local open-addressing counting table.
    table = DeviceHashTable(64)
    for buf in received:
        if buf.size:
            table.insert_batch(buf)
    values, counts = table.items()

    # Gather all partitions at rank 0 to form the global histogram.
    gathered = comm.gather((values, counts), root=0)
    if comm.rank != 0:
        return None
    all_values = np.concatenate([v for v, _ in gathered])
    all_counts = np.concatenate([c for _, c in gathered])
    order = np.argsort(all_values)
    return all_values[order], all_counts[order]


def main() -> None:
    reads = simulate_dataset(genome_length=30_000, coverage=10, seed=5)
    shards = reads.shard_bytes(P, overlap=K - 1)
    print(f"{reads.n_reads} reads across {P} ranks")

    results = run_spmd(P, kmer_count_rank, shards)
    values, counts = results[0]

    oracle = count_kmers_exact(reads, K)
    assert np.array_equal(values, oracle.values)
    assert np.array_equal(counts, oracle.counts)
    print(f"SPMD result matches oracle: {values.shape[0]:,} distinct k-mers, {int(counts.sum()):,} instances")


if __name__ == "__main__":
    main()
