"""Tests for the stage registry, extension stages, and their CLI surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import PipelineConfig
from repro.core.engine import EngineOptions, run_pipeline
from repro.core.incremental import DistributedCounter
from repro.core.stages import (
    PipelinePlugin,
    build_composition,
    register_stage,
    registered_backends,
    registered_stages,
    substrate_names,
)
from repro.core.stages.registry import normalize_backend, resolve_stage
from repro.kmers.spectrum import count_kmers_exact
from repro.mpi.topology import summit_gpu


class TestBackendRegistry:
    def test_four_standard_backends_registered(self):
        keys = registered_backends()
        for key in ("cpu:kmer", "cpu:supermer", "gpu:kmer", "gpu:supermer"):
            assert key in keys

    def test_substrate_names(self):
        assert substrate_names() == ("cpu", "gpu")

    def test_bare_name_resolves_with_config_mode(self):
        assert normalize_backend("gpu", "supermer") == "gpu:supermer"
        assert normalize_backend("cpu", "kmer") == "cpu:kmer"

    def test_explicit_mode_key_accepted(self):
        assert normalize_backend("gpu:kmer", "kmer") == "gpu:kmer"

    def test_mode_conflict_rejected(self):
        with pytest.raises(ValueError, match="conflicts with config mode"):
            normalize_backend("gpu:supermer", "kmer")

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="registered backends.*cpu:kmer"):
            normalize_backend("tpu", "kmer")

    def test_engine_rejects_unknown_backend(self, genome_reads):
        with pytest.raises(ValueError, match="registered backends"):
            run_pipeline(genome_reads, summit_gpu(1), PipelineConfig(k=15), backend="fpga")

    def test_counter_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="registered backends"):
            DistributedCounter(summit_gpu(1), PipelineConfig(k=15), backend="quantum")

    def test_engine_accepts_explicit_mode_key(self, genome_reads):
        cfg = PipelineConfig(k=15, mode="supermer", minimizer_len=7, window=15)
        a = run_pipeline(genome_reads, summit_gpu(1), cfg, backend="gpu:supermer")
        b = run_pipeline(genome_reads, summit_gpu(1), cfg, backend="gpu")
        assert a.spectrum.equals(b.spectrum)
        assert a.timing.total == b.timing.total


class TestStageRegistry:
    def test_builtin_stages_discovered_lazily(self):
        stages = registered_stages()
        assert "bloom" in stages and "balanced" in stages

    def test_unknown_stage_lists_registered(self):
        with pytest.raises(ValueError, match="registered stages.*bloom"):
            resolve_stage("dedup", "kmer")

    def test_mode_restriction_enforced(self):
        with pytest.raises(ValueError, match="supports mode"):
            resolve_stage("balanced", "kmer")

    def test_engine_propagates_stage_mode_error(self, genome_reads):
        with pytest.raises(ValueError, match="supports mode"):
            run_pipeline(
                genome_reads,
                summit_gpu(1),
                PipelineConfig(k=15, mode="kmer"),
                options=EngineOptions(stages=("balanced",)),
            )

    def test_custom_plugin_round_trip(self, genome_reads):
        class DropNothing(PipelinePlugin):
            name = "noop-test"

        register_stage("noop-test", DropNothing, description="test no-op")
        try:
            cfg = PipelineConfig(k=15)
            comp = build_composition("gpu", cfg, EngineOptions(stages=("noop-test",)), summit_gpu(1))
            assert [p.name for p in comp.plugins] == ["noop-test"]
            base = run_pipeline(genome_reads, summit_gpu(1), cfg)
            with_plugin = run_pipeline(
                genome_reads, summit_gpu(1), cfg, options=EngineOptions(stages=("noop-test",))
            )
            assert with_plugin.spectrum.equals(base.spectrum)
        finally:
            from repro.core.stages import registry as registry_mod

            registry_mod._STAGES.pop("noop-test", None)

    def test_conflicting_partition_overrides_rejected(self):
        class OtherBalanced(PipelinePlugin):
            name = "other-balanced"

            def partition_stage(self):
                from repro.core.stages.standard import MinimizerHashPartition

                return MinimizerHashPartition()

        register_stage("other-balanced", OtherBalanced, modes=("supermer",))
        try:
            cfg = PipelineConfig(k=15, mode="supermer", minimizer_len=5, window=9)
            with pytest.raises(ValueError, match="both override the partition stage"):
                build_composition(
                    "gpu", cfg, EngineOptions(stages=("balanced", "other-balanced")), summit_gpu(1)
                )
        finally:
            from repro.core.stages import registry as registry_mod

            registry_mod._STAGES.pop("other-balanced", None)


class TestBloomStage:
    def test_bloom_suppresses_singletons_exactly(self, genome_reads):
        """Bloom-filtered spectrum == exact spectrum restricted to count>=2."""
        k = 15
        result = run_pipeline(
            genome_reads,
            summit_gpu(1),
            PipelineConfig(k=k),
            options=EngineOptions(stages=("bloom",)),
        )
        oracle = count_kmers_exact(genome_reads, k).frequent(2)
        assert result.spectrum.equals(oracle)

    def test_bloom_load_accounting_is_prefilter(self, genome_reads):
        """received_kmers counts instances seen, not instances inserted."""
        k = 15
        base = run_pipeline(genome_reads, summit_gpu(1), PipelineConfig(k=k))
        bloom = run_pipeline(
            genome_reads, summit_gpu(1), PipelineConfig(k=k), options=EngineOptions(stages=("bloom",))
        )
        assert np.array_equal(bloom.received_kmers, base.received_kmers)
        assert bloom.spectrum.n_distinct < base.spectrum.n_distinct

    def test_bloom_in_streamed_counter(self):
        from .golden_cases import batch_reads

        k = 17
        batches = batch_reads()
        counter = DistributedCounter(
            summit_gpu(1), PipelineConfig(k=k), options=EngineOptions(stages=("bloom",))
        )
        for batch in batches:
            counter.add_reads(batch)
        from repro.dna.reads import ReadSet

        oracle = count_kmers_exact(ReadSet.concat(batches), k).frequent(2)
        assert counter.spectrum().equals(oracle)


class TestBalancedStage:
    def test_balanced_preserves_spectrum_and_reduces_imbalance(self, genome_reads):
        cfg = PipelineConfig(k=15, mode="supermer", minimizer_len=5, window=9)
        base = run_pipeline(genome_reads, summit_gpu(2), cfg)
        balanced = run_pipeline(
            genome_reads, summit_gpu(2), cfg, options=EngineOptions(stages=("balanced",))
        )
        assert balanced.spectrum.equals(base.spectrum)
        assert balanced.load_stats().imbalance <= base.load_stats().imbalance

    def test_balanced_matches_manual_assignment_option(self, genome_reads):
        """The plugin reproduces the EngineOptions.minimizer_assignment path."""
        from repro.ext.balanced import balanced_minimizer_assignment

        cfg = PipelineConfig(k=15, mode="supermer", minimizer_len=5, window=9)
        cluster = summit_gpu(2)
        assignment = balanced_minimizer_assignment(
            genome_reads, cfg.k, cfg.minimizer_len, cluster.n_ranks, ordering=cfg.ordering
        )
        manual = run_pipeline(
            genome_reads, cluster, cfg, options=EngineOptions(minimizer_assignment=assignment)
        )
        plugin = run_pipeline(genome_reads, cluster, cfg, options=EngineOptions(stages=("balanced",)))
        assert plugin.spectrum.equals(manual.spectrum)
        assert np.array_equal(plugin.received_kmers, manual.received_kmers)


@pytest.fixture
def fastq(tmp_path):
    path = tmp_path / "sample.fastq"
    assert (
        main(
            [
                "simulate",
                "--genome-length",
                "6000",
                "--coverage",
                "5",
                "--read-length",
                "300",
                "--seed",
                "9",
                "--out",
                str(path),
            ]
        )
        == 0
    )
    return path


class TestCliStages:
    def test_count_with_stages_end_to_end(self, fastq, tmp_path, capsys):
        db = tmp_path / "out.rkdb"
        code = main(
            [
                "count",
                "--input",
                str(fastq),
                "-k",
                "15",
                "--nodes",
                "1",
                "--backend",
                "gpu",
                "--mode",
                "supermer",
                "--stages",
                "bloom,balanced",
                "--out-db",
                str(db),
            ]
        )
        assert code == 0
        assert "total_kmers" in capsys.readouterr().out
        assert db.exists()

    def test_unknown_backend_is_clear_error(self, fastq, capsys):
        assert main(["count", "--input", str(fastq), "--backend", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "registered backends" in err and "gpu:supermer" in err

    def test_unknown_stage_is_clear_error(self, fastq, capsys):
        assert main(["count", "--input", str(fastq), "--stages", "dedup"]) == 2
        err = capsys.readouterr().err
        assert "registered stages" in err and "bloom" in err

    def test_stage_mode_conflict_is_clear_error(self, fastq, capsys):
        assert main(["count", "--input", str(fastq), "--mode", "kmer", "--stages", "balanced"]) == 2
        assert "supports mode" in capsys.readouterr().err

    def test_backend_mode_conflict_is_clear_error(self, fastq, capsys):
        assert main(["count", "--input", str(fastq), "--mode", "kmer", "--backend", "gpu:supermer"]) == 2
        assert "conflicts with config mode" in capsys.readouterr().err
