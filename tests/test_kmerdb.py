"""Tests for the on-disk k-mer database and TSV formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmers.kmerdb import read_kmerdb, read_kmerdb_header, read_tsv, write_kmerdb, write_tsv
from repro.kmers.spectrum import count_kmers_exact, spectrum_from_counts

spectra = st.dictionaries(
    st.integers(min_value=0, max_value=4**9 - 1),
    st.integers(min_value=1, max_value=10**12),
    max_size=200,
)


class TestBinaryFormat:
    @given(pairs=spectra)
    @settings(max_examples=50)
    def test_roundtrip_exact(self, pairs, tmp_path_factory):
        spectrum = spectrum_from_counts(9, pairs)
        path = tmp_path_factory.mktemp("db") / "x.rkdb"
        write_kmerdb(path, spectrum)
        back = read_kmerdb(path)
        assert back.equals(spectrum)

    def test_header_only_read(self, tmp_path):
        spectrum = spectrum_from_counts(17, {10: 3, 20: 5})
        path = tmp_path / "x.rkdb"
        nbytes = write_kmerdb(path, spectrum)
        assert path.stat().st_size == nbytes
        k, n = read_kmerdb_header(path)
        assert (k, n) == (17, 2)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rkdb"
        path.write_bytes(b"NOPE" + b"\0" * 20)
        with pytest.raises(ValueError, match="bad magic"):
            read_kmerdb(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.rkdb"
        path.write_bytes(b"RK")
        with pytest.raises(ValueError, match="truncated"):
            read_kmerdb_header(path)

    def test_truncated_payload(self, tmp_path):
        spectrum = spectrum_from_counts(17, {10: 3, 20: 5, 30: 9})
        path = tmp_path / "x.rkdb"
        write_kmerdb(path, spectrum)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ValueError, match="truncated payload"):
            read_kmerdb(path)

    def test_real_spectrum_roundtrip(self, genome_reads, tmp_path):
        spectrum = count_kmers_exact(genome_reads, 17)
        path = tmp_path / "genome.rkdb"
        write_kmerdb(path, spectrum)
        assert read_kmerdb(path).equals(spectrum)

    def test_empty_spectrum(self, tmp_path):
        spectrum = spectrum_from_counts(5, {})
        path = tmp_path / "empty.rkdb"
        write_kmerdb(path, spectrum)
        back = read_kmerdb(path)
        assert back.n_distinct == 0 and back.k == 5


class TestTsvFormat:
    @given(pairs=spectra)
    @settings(max_examples=40)
    def test_roundtrip(self, pairs, tmp_path_factory):
        spectrum = spectrum_from_counts(9, pairs)
        path = tmp_path_factory.mktemp("tsv") / "x.tsv"
        n = write_tsv(path, spectrum)
        assert n == spectrum.n_distinct
        if n:
            assert read_tsv(path).equals(spectrum)

    def test_content_is_readable(self, tmp_path):
        spectrum = spectrum_from_counts(3, {0: 2})  # AAA x2
        path = tmp_path / "x.tsv"
        write_tsv(path, spectrum)
        assert path.read_text() == "AAA\t2\n"

    def test_unsorted_input_accepted(self, tmp_path):
        path = tmp_path / "shuffled.tsv"
        path.write_text("TTT\t4\nAAA\t1\nCCC\t2\n")
        spectrum = read_tsv(path)
        assert spectrum.values.tolist() == sorted(spectrum.values.tolist())
        assert spectrum.count_of(0) == 1  # AAA

    def test_mixed_k_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("AAA\t1\nAAAA\t2\n")
        with pytest.raises(ValueError, match="length"):
            read_tsv(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("AAA 1\n")
        with pytest.raises(ValueError, match="TAB"):
            read_tsv(path)

    def test_empty_needs_k(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ValueError, match="no k"):
            read_tsv(path)
        assert read_tsv(path, k=5).n_distinct == 0
