#!/usr/bin/env python
"""Comparative genomics: k-mer distances between related strains.

The paper's introduction lists "comparisons to massive genome or protein
databases" among the applications its counter unlocks (Section VII), and
cites multiset k-mer comparison [3] and k-mer LSH [18].  This example
builds that workflow end to end: three simulated strains diverge from a
common ancestor at different mutation rates; each strain's reads are
counted on the simulated distributed system; pairwise Mash distances
recover the divergence structure, first from full spectra and then from
1000-value MinHash sketches.

Usage:  python examples/strain_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import count_distributed
from repro.bench import format_table
from repro.core.config import PipelineConfig
from repro.dna.reads import ReadSet
from repro.dna.simulate import GenomeSimulator, ReadLengthProfile, ReadSimulator
from repro.kmers import MinHashSketch, compare_spectra, mash_distance

K = 21
RATES = {"ancestor": 0.0, "strain_near": 0.005, "strain_far": 0.03}


def mutate(genome: np.ndarray, rate: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    out = genome.copy()
    flips = rng.random(out.shape[0]) < rate
    out[flips] = (out[flips] + rng.integers(1, 4, size=int(flips.sum()), dtype=np.uint8)) % 4
    return out


def main() -> None:
    ancestor = GenomeSimulator(80_000, repeat_fraction=0.05, seed=31).generate_codes()
    spectra = {}
    for i, (name, rate) in enumerate(RATES.items()):
        genome = mutate(ancestor, rate, seed=100 + i)
        reads = ReadSimulator(
            genome,
            coverage=15,
            length_profile=ReadLengthProfile.long_read(mean=2500),
            error_rate=0.002,
            seed=200 + i,
        ).generate()
        result = count_distributed(
            reads,
            n_nodes=4,
            config=PipelineConfig(k=K, mode="supermer", minimizer_len=7, window=None),
        )
        # Drop likely-error k-mers before comparing (count >= 3).
        spectra[name] = result.spectrum.frequent(3)
        print(f"{name}: {reads.n_reads} reads -> {spectra[name].n_distinct:,} solid {K}-mers")

    names = list(spectra)
    rows = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            cmp = compare_spectra(spectra[a], spectra[b])
            sk_a = MinHashSketch.from_spectrum(spectra[a], size=1000)
            sk_b = MinHashSketch.from_spectrum(spectra[b], size=1000)
            rows.append(
                [
                    f"{a} vs {b}",
                    f"{cmp.jaccard:.3f}",
                    f"{cmp.mash_distance:.4f}",
                    f"{sk_a.mash_distance_estimate(sk_b):.4f}",
                ]
            )
    print()
    print(
        format_table(
            ["pair", "jaccard", "mash distance (full)", "mash distance (1k sketch)"],
            rows,
            title=f"pairwise strain comparison at k={K}",
        )
    )

    d_near = mash_distance(spectra["ancestor"], spectra["strain_near"])
    d_far = mash_distance(spectra["ancestor"], spectra["strain_far"])
    print(
        f"\nrecovered divergence: ancestor->near {d_near:.4f} (true rate 0.005), "
        f"ancestor->far {d_far:.4f} (true rate 0.03)"
    )
    assert d_near < d_far, "distances must order by true divergence"


if __name__ == "__main__":
    main()
