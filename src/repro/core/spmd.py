"""SPMD rank programs: the pipelines as ordinary MPI-style code.

The BSP scheduler (:mod:`repro.core.stages.scheduler`) simulates all ranks
in one process, which is ideal for deterministic experiments but looks
nothing like the paper's actual MPI code.  This module provides the
*other* rendering: per-rank programs for :class:`repro.mpi.ThreadedWorld`
whose bodies read like Algorithm 1 / Algorithm 2 — parse your shard,
alltoallv, count, gather — and which the test suite runs concurrently and
checks produce bit-identical spectra to the engine.

Since the stage-graph refactor both renderings execute the *same* stage
objects (:func:`repro.core.stages.staged_rank_program`); these wrappers
only pin the transport mode.  Use them as templates for prototyping new
distributed k-mer algorithms; they are correctness-only (no cost model —
model timing lives in the scheduler).
"""

from __future__ import annotations

from dataclasses import replace

from ..dna.reads import ReadSet
from ..kmers.spectrum import KmerSpectrum
from ..mpi.comm import Comm, run_spmd
from .config import PipelineConfig
from .stages.spmd import staged_rank_program

__all__ = ["kmer_count_program", "supermer_count_program", "count_spmd"]


def kmer_count_program(comm: Comm, shard: ReadSet, config: PipelineConfig) -> KmerSpectrum | None:
    """Algorithm 1, one rank: parse -> hash -> alltoallv -> count -> gather.

    Returns the merged global spectrum on rank 0, ``None`` elsewhere.
    """
    if config.mode != "kmer":
        config = replace(config, mode="kmer")
    return staged_rank_program(comm, shard, config)


def supermer_count_program(comm: Comm, shard: ReadSet, config: PipelineConfig) -> KmerSpectrum | None:
    """Algorithm 2, one rank: build supermers, route by minimizer, extract
    and count at the destination.  Returns the spectrum on rank 0."""
    if config.mode != "supermer":
        config = replace(config, mode="supermer")
    return staged_rank_program(comm, shard, config)


def count_spmd(reads: ReadSet, n_ranks: int, config: PipelineConfig | None = None) -> KmerSpectrum:
    """Run the staged SPMD program across a threaded world.

    Convenience wrapper: shards the input (byte-balanced, k-1 overlap),
    runs one thread per rank, and returns rank 0's merged spectrum.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    config = config or PipelineConfig()
    shards = reads.shard_bytes(n_ranks, overlap=config.k - 1)
    results = run_spmd(n_ranks, staged_rank_program, shards, [config] * n_ranks)
    return results[0]
