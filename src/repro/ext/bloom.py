"""Bloom-filter prefilter for singleton suppression (HipMer/diBELLA heritage).

The lineage this paper builds on (HipMer's k-mer analysis [12], diBELLA [7])
uses Bloom filters so that k-mers seen only once — overwhelmingly sequencing
errors in long-read data — never enter the counting hash table, cutting its
memory by the singleton fraction (often 50-80%).  The paper's GPU counter
omits this step; we provide it as an extension usable both standalone and
inside a counting pass.

Implementation: a standard Bloom filter over packed k-mer words with
``n_hashes`` MurmurHash3-derived probes, fully vectorized (bit array as
uint64 words).  :func:`count_with_prefilter` is the classic two-action pass:
for each k-mer, if the filter already contains it, insert into the table;
otherwise only set it in the filter.  The resulting table holds exact counts
minus exactly one occurrence for every k-mer (the occurrence that armed the
filter), so callers asking for "k-mers with count >= 2" add one back —
:func:`count_with_prefilter` does this reconstruction and reports exact
counts for every non-singleton k-mer, assuming no false positives flipped a
singleton in (the false-positive rate is reported so callers can size for
their tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.hashtable import DeviceHashTable
from ..hashing.murmur3 import hash_kmers_batch

__all__ = ["BloomFilter", "PrefilterResult", "count_with_prefilter"]


class BloomFilter:
    """Vectorized Bloom filter over uint64 keys."""

    def __init__(self, capacity: int, *, bits_per_key: int = 10, n_hashes: int = 4, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if bits_per_key < 1 or n_hashes < 1:
            raise ValueError("bits_per_key and n_hashes must be positive")
        self.n_bits = 64  # at least one word
        while self.n_bits < capacity * bits_per_key:
            self.n_bits *= 2
        self.n_hashes = n_hashes
        self.seed = seed
        self._words = np.zeros(self.n_bits // 64, dtype=np.uint64)
        self._mask = np.uint64(self.n_bits - 1)

    def _bit_positions(self, keys: np.ndarray, i: int) -> np.ndarray:
        return hash_kmers_batch(keys, seed=self.seed + 7919 * i) & self._mask

    def add(self, keys: np.ndarray) -> None:
        """Set all probe bits for a batch of keys."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        for i in range(self.n_hashes):
            bits = self._bit_positions(keys, i)
            np.bitwise_or.at(self._words, (bits >> np.uint64(6)).astype(np.int64), np.uint64(1) << (bits & np.uint64(63)))

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Membership test -> bool array (false positives possible)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.ones(keys.shape[0], dtype=bool)
        for i in range(self.n_hashes):
            bits = self._bit_positions(keys, i)
            word = self._words[(bits >> np.uint64(6)).astype(np.int64)]
            out &= (word >> (bits & np.uint64(63))) & np.uint64(1) != 0
        return out

    def add_if_absent(self, keys: np.ndarray) -> np.ndarray:
        """Atomically (per batch round) test-and-set; returns was-present mask.

        Duplicate keys *within* the batch are handled like concurrent GPU
        threads racing the filter: the first instance arms the filter, later
        instances observe it set.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        present = self.contains(keys)
        # For correctness under intra-batch duplicates, also mark duplicates
        # of a key first seen earlier in this same batch as present.
        uniq, first_idx, inverse = np.unique(keys, return_index=True, return_inverse=True)
        dup_of_earlier = first_idx[inverse] != np.arange(keys.shape[0])
        present |= dup_of_earlier
        self.add(keys[~present])
        return present

    def fill_fraction(self) -> float:
        """Fraction of bits set (drives the false-positive rate)."""
        set_bits = int(np.unpackbits(self._words.view(np.uint8)).sum())
        return set_bits / self.n_bits

    def false_positive_rate(self) -> float:
        """Estimated FPR at the current fill: fill^n_hashes."""
        return self.fill_fraction() ** self.n_hashes


@dataclass(frozen=True)
class PrefilterResult:
    """Outcome of a Bloom-prefiltered counting pass."""

    table: DeviceHashTable
    n_instances: int
    n_suppressed_singletons: int  # k-mers that never re-occurred
    false_positive_rate: float

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """(values, exact counts) of all k-mers with count >= 2."""
        return self.table.items()


def count_with_prefilter(
    kmers: np.ndarray,
    *,
    bits_per_key: int = 12,
    n_hashes: int = 4,
    seed: int = 0,
) -> PrefilterResult:
    """Count k-mers with count >= 2 exactly, suppressing singletons.

    Classic HipMer-style pass over the instance stream: the first occurrence
    of a k-mer arms the Bloom filter; subsequent occurrences are counted in
    the hash table.  Afterwards, every table entry's count is incremented by
    one to restore the armed occurrence, making counts exact for all
    non-singletons (modulo Bloom false positives, whose expected rate is
    reported).
    """
    kmers = np.ascontiguousarray(kmers, dtype=np.uint64)
    bloom = BloomFilter(max(int(kmers.shape[0]), 1), bits_per_key=bits_per_key, n_hashes=n_hashes, seed=seed)
    table = DeviceHashTable(max(64, kmers.shape[0] // 4), seed=seed + 1)
    seen_before = bloom.add_if_absent(kmers)
    repeats = kmers[seen_before]
    if repeats.size:
        table.insert_batch(repeats)
        # Restore the occurrence that armed the filter for every survivor.
        mask = table.keys != np.uint64(0xFFFFFFFFFFFFFFFF)
        table.counts[mask] += 1
    n_singletons = int(kmers.shape[0]) - int(repeats.shape[0]) - table.n_entries
    # n_singletons counts first-occurrences that never repeated: total first
    # occurrences are (n - repeats); of those, table.n_entries re-occurred.
    return PrefilterResult(
        table=table,
        n_instances=int(kmers.shape[0]),
        n_suppressed_singletons=max(n_singletons, 0),
        false_positive_rate=bloom.false_positive_rate(),
    )
