"""Live metrics endpoint: a background HTTP thread over a MetricRegistry.

``repro count --metrics-port N`` (and, eventually, the ROADMAP's
``repro serve`` daemon) exposes the run's registry while it is still
running: the CLI updates ``progress_*`` / heartbeat / ETA gauges between
batches, and any Prometheus scraper — or a plain ``curl`` — can watch a
long count converge instead of waiting for the final ``--metrics-out``
file.

Endpoints:

* ``/metrics`` — the registry in Prometheus text exposition format
  (exactly :func:`repro.telemetry.export.prometheus_text`);
* ``/metrics.json`` — the deterministic JSON snapshot;
* ``/healthz`` — ``ok`` (liveness probe).

The server is a daemon ``ThreadingHTTPServer`` on localhost by default;
``port=0`` binds an ephemeral port (read it back from ``.port``), which
is what the tests and the CI smoke scrape use.  Handlers only *read* the
registry — reads take the registry's internal lock per family, so a
scrape concurrent with engine updates sees a consistent family but never
blocks the run for more than a dict copy.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import json_snapshot, prometheus_text
from .registry import MetricRegistry

__all__ = ["MetricsServer"]


class MetricsServer:
    """Background HTTP server exposing one registry; start()/stop() or ``with``."""

    def __init__(self, registry: MetricRegistry, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), self._handler_class())
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    def _handler_class(self) -> type[BaseHTTPRequestHandler]:
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = prometheus_text(registry).encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/metrics.json":
                    body = json.dumps(json_snapshot(registry), sort_keys=True).encode()
                    ctype = "application/json"
                elif path in ("/", "/healthz"):
                    body = b"ok\n"
                    ctype = "text/plain; charset=utf-8"
                else:
                    self.send_error(404, "unknown endpoint (use /metrics, /metrics.json, /healthz)")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args) -> None:
                pass  # scrapes must not spam the run's stdout

        return Handler

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
