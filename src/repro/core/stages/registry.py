"""Backend + extension-stage registry: names -> stage compositions.

The execution core never hardcodes ``backend in ("gpu", "cpu")``; this
module is the single source of truth for which backends exist and how each
maps onto concrete stages.  A *backend key* is ``"<substrate>"`` or
``"<substrate>:<mode>"`` (``"gpu"``, ``"cpu:supermer"``, ...); the mode
part, when present, must agree with the run's :class:`PipelineConfig`.

Extension stages (:class:`~repro.core.stages.protocols.PipelinePlugin`
subclasses) register under short names (``"bloom"``, ``"balanced"``) via
:func:`register_stage` and are requested per-run through
``EngineOptions.stages`` or the CLI's ``--stages``.  Built-in extensions
live in :mod:`repro.ext.stages`, discovered lazily through an entry-point
table so ``repro.core`` keeps no static import of ``repro.ext`` (the
layering lint enforces the boundary).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..config import PipelineConfig
from .protocols import (
    CountStage,
    ExchangeStage,
    MergeStage,
    ParseStage,
    PartitionStage,
    PipelinePlugin,
    Substrate,
)
from .standard import (
    AlltoallvExchange,
    CpuSubstrate,
    GpuSubstrate,
    KmerHashPartition,
    KmerParse,
    MinimizerHashPartition,
    SpectrumMerge,
    SupermerParse,
    TableCount,
)

if TYPE_CHECKING:
    from ...mpi.topology import ClusterSpec
    from .context import EngineOptions

__all__ = [
    "StageComposition",
    "register_backend",
    "resolve",
    "registered_backends",
    "substrate_names",
    "normalize_backend",
    "register_stage",
    "resolve_stage",
    "registered_stages",
    "build_composition",
]


@dataclass
class StageComposition:
    """A fully-resolved pipeline: one concrete stage per graph node."""

    key: str  # registry key this resolved from ("gpu:supermer", ...)
    backend: str  # substrate name ("gpu" or "cpu")
    mode: str  # transport mode ("kmer" or "supermer")
    parse: ParseStage
    partition: PartitionStage
    exchange: ExchangeStage
    count: CountStage
    merge: MergeStage
    substrate: Substrate
    plugins: tuple[PipelinePlugin, ...] = ()
    # False when a plugin drops k-mers from the spectrum (e.g. the Bloom
    # pre-filter), disabling the scheduler's parsed-vs-counted check.
    conserves_kmers: bool = True


# -- backend registry ---------------------------------------------------------

_CompositionFactory = Callable[[PipelineConfig, "EngineOptions"], StageComposition]
_BACKENDS: dict[str, _CompositionFactory] = {}


def register_backend(key: str, factory: _CompositionFactory) -> None:
    """Register a backend composition under ``"<substrate>:<mode>"``."""
    if ":" not in key:
        raise ValueError(f"backend key must be '<substrate>:<mode>', got {key!r}")
    _BACKENDS[key] = factory


def registered_backends() -> tuple[str, ...]:
    """All registered backend keys, sorted."""
    return tuple(sorted(_BACKENDS))


def substrate_names() -> tuple[str, ...]:
    """Distinct substrate prefixes ("cpu", "gpu"), sorted — CLI choices."""
    return tuple(sorted({key.split(":", 1)[0] for key in _BACKENDS}))


def normalize_backend(backend: str, mode: str) -> str:
    """Validate a user-supplied backend against the registry.

    Accepts ``"gpu"`` (mode comes from the config) or ``"gpu:supermer"``
    (mode spelled out; must match the config).  Returns the canonical
    ``"<substrate>:<mode>"`` key.  This is the single source of truth for
    backend validation — every entry point (engine, incremental counter,
    driver, CLI) funnels through it.
    """
    if ":" in backend:
        substrate, _, key_mode = backend.partition(":")
        if key_mode != mode:
            raise ValueError(
                f"backend {backend!r} conflicts with config mode {mode!r}; "
                f"drop the ':{key_mode}' suffix or change the config"
            )
    else:
        substrate = backend
    key = f"{substrate}:{mode}"
    if key not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} for mode {mode!r}; "
            f"registered backends: {', '.join(registered_backends())}"
        )
    return key


def resolve(backend: str, config: PipelineConfig, opts: "EngineOptions") -> StageComposition:
    """Resolve a backend key to its base composition (no plugins applied)."""
    key = normalize_backend(backend, config.mode)
    return _BACKENDS[key](config, opts)


# -- extension-stage registry -------------------------------------------------


@dataclass(frozen=True)
class _StageEntry:
    factory: Callable[[], PipelinePlugin]
    description: str
    modes: tuple[str, ...] = field(default=("kmer", "supermer"))


_STAGES: dict[str, _StageEntry] = {}

# Entry-point table: modules probed (once, lazily) for self-registering
# extension stages.  Third-party packages extend the pipeline the same way:
# import-time register_stage() calls in a module added to this table or
# imported before the run.
_LAZY_STAGE_MODULES: tuple[str, ...] = ("repro.ext.stages",)
_lazy_loaded = False


def register_stage(
    name: str,
    factory: Callable[[], PipelinePlugin],
    *,
    description: str = "",
    modes: tuple[str, ...] = ("kmer", "supermer"),
) -> None:
    """Register an extension stage plugin under a short name."""
    _STAGES[name] = _StageEntry(factory=factory, description=description, modes=modes)


def _load_lazy_stages() -> None:
    global _lazy_loaded
    if _lazy_loaded:
        return
    _lazy_loaded = True
    for module in _LAZY_STAGE_MODULES:
        try:
            importlib.import_module(module)
        except ImportError:  # pragma: no cover - optional extension package
            pass


def registered_stages() -> dict[str, str]:
    """Registered extension stages: name -> description."""
    _load_lazy_stages()
    return {name: entry.description for name, entry in sorted(_STAGES.items())}


def resolve_stage(name: str, mode: str) -> PipelinePlugin:
    """Instantiate one extension stage, validating the mode combination."""
    _load_lazy_stages()
    entry = _STAGES.get(name)
    if entry is None:
        known = ", ".join(sorted(_STAGES)) or "(none)"
        raise ValueError(f"unknown stage {name!r}; registered stages: {known}")
    if mode not in entry.modes:
        raise ValueError(
            f"stage {name!r} supports mode(s) {', '.join(entry.modes)}, "
            f"but the pipeline mode is {mode!r}"
        )
    return entry.factory()


# -- composition builder ------------------------------------------------------


def build_composition(
    backend: str,
    config: PipelineConfig,
    opts: "EngineOptions",
    cluster: "ClusterSpec",
) -> StageComposition:
    """Resolve backend + requested extension stages into one composition."""
    comp = resolve(backend, config, opts)
    if not opts.stages:
        return comp
    plugins = tuple(resolve_stage(name, config.mode) for name in opts.stages)
    partition = comp.partition
    overriders = [p for p in plugins if p.partition_stage() is not None]
    if len(overriders) > 1:
        names = ", ".join(p.name for p in overriders)
        raise ValueError(f"stages {names} both override the partition stage; pick one")
    if overriders:
        partition = overriders[0].partition_stage()
    comp.partition = partition
    comp.plugins = plugins
    comp.count = TableCount(plugins)
    comp.merge = SpectrumMerge(plugins)
    comp.conserves_kmers = all(not p.alters_spectrum for p in plugins)
    return comp


# -- the paper's four backends ------------------------------------------------


def _standard(substrate: Substrate, mode: str, key: str) -> _CompositionFactory:
    def factory(config: PipelineConfig, opts: "EngineOptions") -> StageComposition:
        if mode == "kmer":
            parse: ParseStage = KmerParse()
            partition: PartitionStage = KmerHashPartition()
        else:
            parse = SupermerParse()
            partition = MinimizerHashPartition(assignment=opts.minimizer_assignment)
        return StageComposition(
            key=key,
            backend=substrate.name,
            mode=mode,
            parse=parse,
            partition=partition,
            exchange=AlltoallvExchange(),
            count=TableCount(),
            merge=SpectrumMerge(),
            substrate=substrate,
        )

    return factory


for _mode in ("kmer", "supermer"):
    for _sub in (GpuSubstrate(), CpuSubstrate()):
        _key = f"{_sub.name}:{_mode}"
        register_backend(_key, _standard(_sub, _mode, _key))
del _mode, _sub, _key
