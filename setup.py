from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
