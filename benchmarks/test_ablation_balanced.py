"""Ablation: the future-work balanced minimizer partitioner (Section VII).

"In future work, we plan to investigate the issue of the high load
imbalance introduced due to the use of supermers.  We plan to devise a
better partitioning algorithm that maintains the locality and at the same
time partitions data evenly."  This benchmark runs that algorithm
(:mod:`repro.ext.balanced`, sampled LPT bin assignment) against the paper's
hash partitioning on the most skewed dataset and quantifies the recovery.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, write_report
from repro.core.config import PipelineConfig
from repro.core.engine import EngineOptions, run_pipeline
from repro.ext.balanced import balanced_minimizer_assignment
from repro.mpi.topology import summit_gpu

DATASET = "hsapiens54x"
NODES = 64


def test_ablation_balanced_partitioning(benchmark, cache, results_dir):
    def experiment():
        reads, mult = cache.dataset(DATASET)
        cluster = summit_gpu(NODES)
        cfg = PipelineConfig(k=17, mode="supermer", minimizer_len=7, window=15)
        hash_run = cache.run(DATASET, n_nodes=NODES, backend="gpu", mode="supermer", minimizer_len=7)
        assignment = balanced_minimizer_assignment(reads, 17, 7, cluster.n_ranks, sample_fraction=0.25, seed=5)
        balanced_run = run_pipeline(
            reads,
            cluster,
            cfg,
            options=EngineOptions(work_multiplier=mult, minimizer_assignment=assignment),
        )
        kmer_run = cache.run(DATASET, n_nodes=NODES, backend="gpu", mode="kmer")
        return kmer_run, hash_run, balanced_run

    kmer_run, hash_run, balanced_run = run_once(benchmark, experiment)

    rows = []
    for label, r in [
        ("kmer (hash)", kmer_run),
        ("supermer (hash, paper)", hash_run),
        ("supermer (LPT balanced, ext)", balanced_run),
    ]:
        rows.append(
            [
                label,
                f"{r.load_stats().imbalance:.2f}",
                f"{r.timing.count:.2f}",
                f"{r.timing.exchange:.2f}",
                f"{r.timing.total:.2f}",
            ]
        )
    text = format_table(
        ["variant", "imbalance", "count_s", "exchange_s", "total_s"],
        rows,
        title=f"Ablation: balanced minimizer partitioning ({DATASET}, {NODES} nodes, m=7)\n"
        "the paper's conclusion asks for exactly this experiment",
    )
    write_report("ablation_balanced", text, results_dir)

    # Counting stays exact.
    balanced_run.validate_against(hash_run.spectrum)
    # Imbalance drops substantially toward the k-mer-mode baseline.
    assert balanced_run.load_stats().imbalance < 0.7 * hash_run.load_stats().imbalance
    # And the end-to-end supermer win over k-mer transport improves.
    assert balanced_run.timing.total < hash_run.timing.total
    assert balanced_run.timing.total < kmer_run.timing.total
