"""Weighted de Bruijn graph construction from a k-mer spectrum.

The paper positions k-mer histograms as the substrate for "a (weighted) de
Bruijn graph representation" used by assemblers (Section II-A, refs [4],
[11], [25]).  This module closes that loop: it builds the weighted de
Bruijn graph from a counted spectrum — nodes are (k-1)-mers, each counted
k-mer is an edge from its prefix to its suffix with its count as weight —
and provides the standard compaction (unitig extraction) that assemblers
like MEGAHIT/HipMer perform first.

Graphs are ``networkx.DiGraph`` with packed-integer node ids; ``graph.graph
["k"]`` records k so nodes/edges can be decoded back to strings.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..dna.encoding import kmer_to_string
from .spectrum import KmerSpectrum

__all__ = ["build_debruijn", "unitigs", "DebruijnStats", "graph_stats", "node_string", "edge_string"]


def build_debruijn(spectrum: KmerSpectrum, *, min_count: int = 1) -> nx.DiGraph:
    """Build the weighted de Bruijn graph of all k-mers with count >= min_count.

    Edge ``u -> v`` exists for k-mer ``x`` where ``u = x[:-1]`` and
    ``v = x[1:]`` (packed as (k-1)-mers); ``weight`` is the k-mer's count.
    Vectorized: prefixes/suffixes come from shifts and masks on the packed
    key array, no per-k-mer string work.
    """
    if spectrum.k < 2:
        raise ValueError("de Bruijn construction needs k >= 2")
    if min_count < 1:
        raise ValueError("min_count must be >= 1")
    keep = spectrum.counts >= min_count
    values = spectrum.values[keep]
    counts = spectrum.counts[keep]
    k = spectrum.k
    prefixes = values >> np.uint64(2)
    mask = np.uint64((1 << (2 * (k - 1))) - 1)
    suffixes = values & mask

    graph = nx.DiGraph(k=k)
    graph.add_weighted_edges_from(
        zip(prefixes.tolist(), suffixes.tolist(), counts.tolist()), weight="weight"
    )
    return graph


def node_string(graph: nx.DiGraph, node: int) -> str:
    """Decode a node id to its (k-1)-mer string."""
    return kmer_to_string(node, graph.graph["k"] - 1)


def edge_string(graph: nx.DiGraph, u: int, v: int) -> str:
    """Decode an edge back to its k-mer string."""
    k = graph.graph["k"]
    value = (u << 2) | (v & 0b11)
    return kmer_to_string(value, k)


def _is_path_internal(graph: nx.DiGraph, node: int) -> bool:
    return graph.in_degree(node) == 1 and graph.out_degree(node) == 1


def unitigs(graph: nx.DiGraph) -> list[str]:
    """Extract maximal non-branching paths as base strings (compaction).

    A unitig starts at every edge whose source is not path-internal (a
    branch, tip, or start node) and extends while nodes remain
    path-internal; cycles of purely internal nodes are emitted once.
    Returns decoded strings; every graph edge appears in exactly one unitig.
    """
    out: list[str] = []
    visited_edges: set[tuple[int, int]] = set()

    def walk(u: int, v: int) -> str:
        bases = [node_string(graph, u)]
        visited_edges.add((u, v))
        bases.append(node_string(graph, v)[-1])
        while _is_path_internal(graph, v):
            nxt = next(iter(graph.successors(v)))
            if (v, nxt) in visited_edges:
                break
            visited_edges.add((v, nxt))
            bases.append(node_string(graph, nxt)[-1])
            v = nxt
        return "".join(bases)

    for u in graph.nodes:
        if _is_path_internal(graph, u):
            continue
        for v in graph.successors(u):
            if (u, v) not in visited_edges:
                out.append(walk(u, v))
    # Remaining edges belong to isolated simple cycles.
    for u, v in list(graph.edges):
        if (u, v) not in visited_edges:
            out.append(walk(u, v))
    assert len(visited_edges) == graph.number_of_edges()
    return out


@dataclass(frozen=True)
class DebruijnStats:
    """Summary statistics of a weighted de Bruijn graph."""

    n_nodes: int
    n_edges: int
    n_unitigs: int
    mean_unitig_length: float
    max_unitig_length: int
    total_edge_weight: int
    n_branch_nodes: int


def graph_stats(graph: nx.DiGraph) -> DebruijnStats:
    """Compute :class:`DebruijnStats` (runs compaction once)."""
    paths = unitigs(graph)
    lengths = [len(p) for p in paths]
    branches = sum(1 for n in graph.nodes if graph.out_degree(n) > 1 or graph.in_degree(n) > 1)
    return DebruijnStats(
        n_nodes=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        n_unitigs=len(paths),
        mean_unitig_length=float(np.mean(lengths)) if lengths else 0.0,
        max_unitig_length=max(lengths, default=0),
        total_edge_weight=int(sum(d["weight"] for _, _, d in graph.edges(data=True))),
        n_branch_nodes=branches,
    )
