#!/usr/bin/env python
"""End-to-end FASTQ workflow: simulate, write, re-read, count, analyze.

Mirrors what a user with real sequencing data would do: reads come from a
FASTQ file on disk, get counted on the simulated distributed-GPU system,
and the resulting spectrum drives a simple genomic analysis (separating
solid k-mers from error k-mers by multiplicity — the first step of most
assembly/profiling tools the paper's introduction motivates).

Usage:  python examples/fastq_workflow.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import ReadSet, count_distributed, paper_config
from repro.dna import read_fastq, write_fastq
from repro.dna.simulate import ReadLengthProfile, simulate_dataset
from repro.dna.simulate import reads_to_records

K = 17
COVERAGE = 25


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-fastq-"))
    out_dir.mkdir(parents=True, exist_ok=True)
    fastq_path = out_dir / "sample.fastq.gz"

    # 1. Simulate a sequencing run over a 60 kbp genome and write FASTQ.
    simulated = simulate_dataset(
        genome_length=60_000,
        coverage=COVERAGE,
        length_profile=ReadLengthProfile.long_read(mean=3000),
        repeat_fraction=0.12,
        error_rate=0.01,
        seed=11,
    )
    n = write_fastq(fastq_path, reads_to_records(simulated))
    print(f"wrote {n} reads ({simulated.total_bases:,} bases) to {fastq_path}")

    # 2. Read the FASTQ back, as a real workflow would.
    reads = ReadSet.from_records(read_fastq(fastq_path))
    assert reads.total_bases == simulated.total_bases

    # 3. Count distributed, supermer mode (the paper's best configuration).
    result = count_distributed(
        reads, n_nodes=4, backend="gpu", config=paper_config(mode="supermer", minimizer_len=7)
    )
    spectrum = result.spectrum
    print(
        f"\ncounted {spectrum.n_total:,} k-mer instances -> {spectrum.n_distinct:,} distinct "
        f"(on {result.cluster.n_ranks} simulated GPUs; exchange was "
        f"{result.timing.exchange_fraction():.0%} of model time)"
    )

    # 4. Analyze the spectrum: errors sit at count 1-2, genomic k-mers near
    #    the coverage peak.  This split is the entry point of assemblers.
    solid = spectrum.frequent(3)
    print(f"singleton fraction (error proxy): {spectrum.singleton_fraction():.1%}")
    print(f"solid k-mers (count >= 3): {solid.n_distinct:,} ({solid.n_distinct / spectrum.n_distinct:.1%})")

    mult, freq = spectrum.multiplicity_histogram()
    print("\nmultiplicity histogram (first 12 bins):")
    for m_val, f_val in list(zip(mult.tolist(), freq.tolist()))[:12]:
        bar = "#" * min(60, int(60 * f_val / freq.max()))
        print(f"  count {m_val:>4}: {f_val:>8,} {bar}")

    # 5. Persist the solid k-mers as a FASTA-like artifact.
    from repro.dna import kmer_to_string

    top_path = out_dir / "solid_kmers.txt"
    vals, counts = solid.top(100)
    with open(top_path, "w") as fh:
        for v, c in zip(vals.tolist(), counts.tolist()):
            fh.write(f"{kmer_to_string(v, K)}\t{c}\n")
    print(f"\ntop solid k-mers written to {top_path}")


if __name__ == "__main__":
    main()
