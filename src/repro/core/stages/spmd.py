"""The SPMD rendering of a stage composition: one rank program, real comms.

The BSP scheduler (:mod:`repro.core.stages.scheduler`) simulates all ranks
in one process; this module renders the *same stages* as an MPI-style
per-rank program for :class:`repro.mpi.ThreadedWorld`.  The algorithmic
bodies — extraction, partitioning, destination-side counting, merging —
are the exact stage objects the scheduler uses, so there is a single copy
of each phase in the codebase and the two renderings stay bit-identical
by construction (the golden suite checks anyway).

SPMD programs are correctness-only: no cost model, no telemetry.  Model
timing lives in the scheduler.
"""

from __future__ import annotations

import numpy as np

from ...dna.reads import ReadSet
from ...gpu.hashtable import DeviceHashTable
from ...kmers.spectrum import KmerSpectrum
from ...mpi.comm import Comm
from ..config import PipelineConfig
from .protocols import MergeStage, ParseStage, PartitionStage
from .registry import StageComposition
from .standard import (
    KmerHashPartition,
    KmerParse,
    MinimizerHashPartition,
    SpectrumMerge,
    SupermerParse,
    TableCount,
)

__all__ = ["staged_rank_program", "spmd_stages"]


def spmd_stages(config: PipelineConfig) -> tuple[ParseStage, PartitionStage, TableCount, MergeStage]:
    """The default stage set for an SPMD rank at this config's mode."""
    if config.mode == "kmer":
        return KmerParse(), KmerHashPartition(), TableCount(), SpectrumMerge()
    return SupermerParse(), MinimizerHashPartition(), TableCount(), SpectrumMerge()


def staged_rank_program(
    comm: Comm,
    shard: ReadSet,
    config: PipelineConfig,
    composition: StageComposition | None = None,
) -> KmerSpectrum | None:
    """One rank of the staged pipeline: parse -> route -> alltoallv -> count.

    Reads like Algorithm 1 / Algorithm 2 but every phase body is a shared
    stage object.  Pass a :class:`StageComposition` (e.g. from
    :func:`repro.core.stages.registry.build_composition`) to run extension
    stages; the default is the paper's pipeline for ``config.mode``.
    Returns the merged global spectrum on rank 0, ``None`` elsewhere.
    """
    if composition is not None:
        parse, partition = composition.parse, composition.partition
        count, merge = composition.count, composition.merge
    else:
        parse, partition, count, merge = spmd_stages(config)

    # PARSE: every rank extracts wire items from its own shard.
    items = parse.extract(shard, config)
    owners = partition.owners(items.route_keys, comm.size, config)

    # EXCHANGE: destination-bucketed many-to-many (two parallel alltoallvs
    # in supermer mode — payload words + lengths — exactly like Algorithm
    # 2's pair of ALLTOALLV calls).
    send = [items.data[owners == dst] for dst in range(comm.size)]
    received = comm.alltoallv(send)
    recv_lengths: list[np.ndarray] | None = None
    if items.lengths is not None:
        send_lens = [items.lengths[owners == dst] for dst in range(comm.size)]
        recv_lengths = comm.alltoallv(send_lens)

    # COUNT: local partition of the global open-addressing table.
    table = DeviceHashTable(64, seed=config.table_seed)
    for i, buf in enumerate(received):
        lens = recv_lengths[i] if recv_lengths is not None else None
        kmers = count.extract_kmers(buf, lens, config)
        if isinstance(count, TableCount):
            for plugin in count.plugins:
                kmers = plugin.filter_received(comm.rank, kmers)
        if kmers.size:
            table.insert_batch(kmers)

    # MERGE: gather per-rank partitions to rank 0 and fold into a spectrum.
    values, counts = table.items()
    gathered = comm.gather((values, counts), root=0)
    if comm.rank != 0:
        return None
    return merge.merge_items(list(gathered), config.k)
