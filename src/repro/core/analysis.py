"""Analysis tools: Section IV-D communication theory and load-balance metrics.

The paper closes its supermer section with a volume analysis (Section IV-D)
using: D (input bytes), L (mean read length), k, s (mean supermer length),
and P (processors).  This module implements those formulas exactly, plus
the exact closed form of the supermer base-compression ratio the paper
approximates as "(s - k)x", and helpers that compare theory against a
pipeline run's measured traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.reads import ReadSet
from .results import CountResult, LoadStats

__all__ = [
    "CommunicationTheory",
    "theory_for",
    "base_compression_exact",
    "items_per_supermer",
    "expected_kmers_per_supermer",
    "imbalance_from_result",
]


@dataclass(frozen=True)
class CommunicationTheory:
    """Section IV-D's symbolic quantities, evaluated for one input.

    All volumes are per-processor communication volumes in *items x item
    size* units, following the paper's O(...) expressions with the constant
    factors kept.
    """

    total_bases: float  # D, measured in bases (the paper's "input size")
    mean_read_length: float  # L
    k: int
    mean_supermer_length: float  # s
    n_procs: int  # P

    @property
    def n_reads(self) -> float:
        return self.total_bases / self.mean_read_length

    @property
    def total_kmers(self) -> float:
        """K ~= (D/L) * (L - k + 1)."""
        return self.n_reads * max(self.mean_read_length - self.k + 1, 0.0)

    @property
    def total_supermers(self) -> float:
        """S ~= K / (s - k + 1): each supermer covers s-k+1 k-mers."""
        span = max(self.mean_supermer_length - self.k + 1, 1.0)
        return self.total_kmers / span

    def kmer_volume_per_proc(self) -> float:
        """O((P-1)/P * K/P * k) — bases shipped per processor, k-mer mode."""
        p = self.n_procs
        return (p - 1) / p * self.total_kmers / p * self.k

    def supermer_volume_per_proc(self) -> float:
        """O((P-1)/P * S/P * s) — bases shipped per processor, supermer mode."""
        p = self.n_procs
        return (p - 1) / p * self.total_supermers / p * self.mean_supermer_length

    def predicted_reduction(self) -> float:
        """Exact base-volume reduction: k * (s - k + 1) / s.

        The paper quotes this as "~(s - k)x" and illustrates with k=8,
        s=11 -> 2.90x; the exact form gives 8*4/11 = 2.91 for the same
        example and is what the formulas above imply.
        """
        return base_compression_exact(self.k, self.mean_supermer_length)


def base_compression_exact(k: int, s: float) -> float:
    """Base-volume ratio (k-mer mode / supermer mode) for mean length s."""
    if s < k:
        raise ValueError("mean supermer length must be >= k")
    return k * (s - k + 1) / s


def items_per_supermer(k: int, s: float) -> float:
    """Item-count ratio (k-mers per supermer) = s - k + 1 (Table II's lever)."""
    if s < k:
        raise ValueError("mean supermer length must be >= k")
    return s - k + 1


def expected_kmers_per_supermer(k: int, m: int, window: int | None = None) -> float:
    """Predicted mean supermer size (in k-mers) for random sequence.

    The paper notes "it is hard to come up with an exact communication
    bound" (Section IV-D); for i.i.d. random sequence there is a classic
    closed form.  A k-mer contains ``w = k - m + 1`` m-mers, and the
    density of minimizer *changes* between adjacent k-mers is ``2/(w + 1)``
    (the minimizer-density result of Roberts et al. / Marcais et al.), so
    unbounded supermers average ``(w + 1)/2`` k-mers.  The GPU window adds
    a deterministic break every ``window`` k-mers (Section IV-B); treating
    both as independent renewal processes gives::

        E[k-mers per supermer] ~= 1 / (2/(w+1) + 1/window)

    For the paper's configuration (k=17, m=7, window=15) this predicts
    ~4.3, matching both our measurements (4.25) and the stochastic reading
    of Table II.
    """
    if not 1 <= m < k:
        raise ValueError("need 1 <= m < k")
    w = k - m + 1
    change_rate = 2.0 / (w + 1)
    if window is not None:
        if window < 1:
            raise ValueError("window must be positive")
        change_rate += 1.0 / window
    return 1.0 / change_rate


def theory_for(reads: ReadSet, k: int, mean_supermer_length: float, n_procs: int) -> CommunicationTheory:
    """Build the Section IV-D model from a concrete read set."""
    if reads.n_reads == 0:
        raise ValueError("empty read set")
    return CommunicationTheory(
        total_bases=float(reads.total_bases),
        mean_read_length=float(reads.total_bases / reads.n_reads),
        k=k,
        mean_supermer_length=float(mean_supermer_length),
        n_procs=n_procs,
    )


def imbalance_from_result(result: CountResult) -> dict[str, object]:
    """Table III row for one run: min/max/avg received k-mers + imbalance."""
    loads: LoadStats = result.load_stats()
    return {
        "config": result.config.describe(),
        "ranks": result.cluster.n_ranks,
        "avg_kmers": loads.mean_load,
        "min_kmers": loads.min_load,
        "max_kmers": loads.max_load,
        "load_imbalance": loads.imbalance,
    }


def node_level_loads(result: CountResult) -> np.ndarray:
    """Received k-mers aggregated per node (for topology-aware views)."""
    nodes = result.cluster.node_map()
    out = np.zeros(result.cluster.n_nodes, dtype=np.int64)
    np.add.at(out, nodes, result.received_kmers)
    return out
