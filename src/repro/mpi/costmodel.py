"""Alpha-beta communication time model calibrated to Summit.

The simulator counts exact bytes; this module turns a ``(P, P)`` byte matrix
into a bulk-synchronous completion time.  The model is the standard
alpha-beta form with node-level bandwidth aggregation:

* every rank participates in ``P - 1`` pairwise message rounds, paying
  ``alpha`` latency each (``alpha * (P - 1)`` total — the term that makes
  tiny alltoallvs latency-bound);
* all traffic leaving or entering a *node* shares that node's injection
  bandwidth (Summit: 23 GB/s), derated by ``alltoallv_efficiency`` to the
  throughput a real many-rank MPI_Alltoallv sustains;
* traffic between ranks on the same node moves at the (faster) intra-node
  bandwidth and overlaps with network traffic;
* completion time is the max over nodes (bulk-synchronous semantics), so
  *skewed* byte matrices — the supermer pipeline's signature, Table III —
  are automatically penalized, exactly the effect the paper reports as
  "variance in the speedup ... caused by the load imbalance" (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import ClusterSpec

__all__ = ["CommCostModel", "AlltoallvTiming"]


#: Alltoallv algorithm schedules the model knows (real MPI libraries switch
#: between them by message size).
SCHEDULES = ("pairwise", "bruck", "auto")


@dataclass(frozen=True)
class AlltoallvTiming:
    """Breakdown of one modeled alltoallv."""

    latency_time: float
    inter_node_time: float
    intra_node_time: float
    bottleneck_node: int
    schedule: str = "pairwise"

    @property
    def total(self) -> float:
        # Intra-node copies overlap with network transfers; the slower of the
        # two dominates, and latency is serialized setup.
        return self.latency_time + max(self.inter_node_time, self.intra_node_time)


class CommCostModel:
    """Maps byte matrices to times for a given :class:`ClusterSpec`."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    # -- collectives -----------------------------------------------------------

    def alltoallv(self, bytes_matrix: np.ndarray, schedule: str = "auto") -> AlltoallvTiming:
        """Completion time of an irregular all-to-all with this byte matrix.

        ``schedule`` picks the collective algorithm:

        * ``"pairwise"`` — P-1 rounds of direct pairwise exchange: latency
          ``alpha*(P-1)``, each byte crosses the network once (the right
          choice for large payloads — this is what big k-mer exchanges use);
        * ``"bruck"`` — ``ceil(log2 P)`` store-and-forward rounds: latency
          ``alpha*log2(P)``, but each byte is transmitted ``~log2(P)/2``
          times (wins for tiny payloads like the counts exchange);
        * ``"auto"`` — whichever finishes first, as real MPI implementations
          select by message size.
        """
        if schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
        mat = np.ascontiguousarray(bytes_matrix, dtype=np.float64)
        c = self.cluster
        p = c.n_ranks
        if mat.shape != (p, p):
            raise ValueError(f"bytes_matrix must be ({p}, {p}) for {c.name}, got {mat.shape}")
        nodes = c.node_map()
        n = c.n_nodes
        # Node-aggregated matrix: traffic[node_i, node_j].
        node_mat = np.zeros((n, n), dtype=np.float64)
        np.add.at(node_mat, (nodes[:, None], nodes[None, :]), mat)

        inter_out = node_mat.sum(axis=1) - np.diag(node_mat)
        inter_in = node_mat.sum(axis=0) - np.diag(node_mat)
        eff_bw = c.injection_bw * c.alltoallv_efficiency
        per_node_inter = np.maximum(inter_out, inter_in) / eff_bw
        bottleneck = int(per_node_inter.argmax()) if n else 0
        inter_time = float(per_node_inter.max()) if n else 0.0

        # Intra-node traffic excludes rank-local (diagonal of the rank matrix).
        intra = np.diag(node_mat).copy()
        for_rank_local = np.zeros(n, dtype=np.float64)
        np.add.at(for_rank_local, nodes, np.diag(mat))
        intra -= for_rank_local
        intra_time = float(intra.max() / c.intra_node_bw) if n else 0.0

        log_rounds = int(np.ceil(np.log2(p))) if p > 1 else 0
        candidates = {
            "pairwise": AlltoallvTiming(
                latency_time=c.latency * max(p - 1, 0),
                inter_node_time=inter_time,
                intra_node_time=intra_time,
                bottleneck_node=bottleneck,
                schedule="pairwise",
            ),
            "bruck": AlltoallvTiming(
                latency_time=c.latency * log_rounds,
                # Store-and-forward retransmits each byte ~log2(P)/2 times.
                inter_node_time=inter_time * max(log_rounds / 2.0, 1.0),
                intra_node_time=intra_time * max(log_rounds / 2.0, 1.0),
                bottleneck_node=bottleneck,
                schedule="bruck",
            ),
        }
        if schedule != "auto":
            return candidates[schedule]
        return min(candidates.values(), key=lambda t: t.total)

    def alltoall_counts(self) -> float:
        """Time of the small fixed-size MPI_Alltoall that exchanges counts.

        Each rank sends one 8-byte count to every other rank.  This is the
        latency-dominated regime where the Bruck schedule wins, so the model
        takes the better of pairwise and Bruck — as MPI does.
        """
        c = self.cluster
        p = c.n_ranks
        per_node_bytes = 8.0 * c.ranks_per_node * max(p - c.ranks_per_node, 0)
        t_bw = per_node_bytes / (c.injection_bw * c.alltoallv_efficiency)
        pairwise = c.latency * max(p - 1, 0) + t_bw
        log_rounds = int(np.ceil(np.log2(p))) if p > 1 else 0
        bruck = c.latency * log_rounds + t_bw * max(log_rounds / 2.0, 1.0)
        return min(pairwise, bruck)

    def allreduce(self, bytes_per_rank: int) -> float:
        """Tree allreduce: log2(P) rounds of latency + bandwidth."""
        c = self.cluster
        p = c.n_ranks
        rounds = int(np.ceil(np.log2(p))) if p > 1 else 0
        return rounds * (c.latency + bytes_per_rank / c.injection_bw)

    def exchange_time(self, bytes_matrix: np.ndarray, *, include_counts_exchange: bool = True) -> float:
        """Full exchange-phase time: counts alltoall + payload alltoallv.

        This models Algorithm 1's EXCHANGEKMER (an MPI_Alltoall of counts
        followed by the MPI_Alltoallv of payloads).
        """
        t = self.alltoallv(bytes_matrix).total
        if include_counts_exchange:
            t += self.alltoall_counts()
        return t
