"""Tests for the out-of-core execution tier (spill-to-disk + external merge).

The spill path's contract is bit-identity with the in-memory staged
scheduler on every deterministic observable — spectrum, timing floats,
per-rank model times, traffic records, counts matrices, insert
statistics, round counts, and the model-metric telemetry snapshot.  Only
``wall=True`` families (the ``spill_*`` counters) may differ.
"""

from __future__ import annotations

import logging
import random

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.engine import EngineOptions, run_pipeline
from repro.core.incremental import DistributedCounter
from repro.core.stages.spill import MERGE_BLOCK_KEYS, SpillSpool, external_merge, supports_spill
from repro.dna.simulate import GenomeSimulator, ReadLengthProfile, ReadSimulator, simulate_dataset
from repro.kmers.spectrum import count_kmers_exact
from repro.mpi.topology import summit_cpu, summit_gpu
from repro.telemetry import MetricRegistry

from .golden_cases import snapshot_digest, summarize_counter, summarize_result


def _run_pair(reads, cluster, config, backend, tmp_path, **option_kw):
    """One in-memory run and one spilled run with identical knobs."""
    reg_mem, reg_spill = MetricRegistry(), MetricRegistry()
    mem = run_pipeline(
        reads, cluster, config, backend=backend, options=EngineOptions(telemetry=reg_mem, **option_kw)
    )
    spill_dir = tmp_path / "spool"
    spilled = run_pipeline(
        reads,
        cluster,
        config,
        backend=backend,
        options=EngineOptions(telemetry=reg_spill, spill_dir=spill_dir, **option_kw),
    )
    return mem, spilled, reg_mem, reg_spill, spill_dir


class TestSpillIdentity:
    @pytest.mark.parametrize(
        "mode,canonical,n_rounds",
        [
            ("kmer", False, 1),
            ("kmer", True, 3),
            ("supermer", False, 2),
            ("supermer", True, 1),
        ],
    )
    def test_matches_in_memory(self, genome_reads, tmp_path, mode, canonical, n_rounds):
        config = PipelineConfig(k=17, mode=mode, canonical=canonical, n_rounds=n_rounds)
        mem, spilled, reg_mem, reg_spill, _ = _run_pair(
            genome_reads, summit_gpu(2), config, "gpu", tmp_path
        )
        expected, actual = summarize_result(mem), summarize_result(spilled)
        for key in expected:
            assert actual[key] == expected[key], f"field {key!r} diverged"
        assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem)

    def test_matches_exact_reference(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        spilled = run_pipeline(
            genome_reads,
            summit_gpu(2),
            config,
            backend="gpu",
            options=EngineOptions(spill_dir=tmp_path),
        )
        assert spilled.spectrum.equals(count_kmers_exact(genome_reads, 17))

    def test_cpu_backend(self, genome_reads, tmp_path):
        config = PipelineConfig(k=15, mode="kmer")
        mem, spilled, reg_mem, reg_spill, _ = _run_pair(
            genome_reads, summit_cpu(2), config, "cpu", tmp_path
        )
        assert summarize_result(spilled) == summarize_result(mem)
        assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem)

    def test_with_plugins(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer")
        mem, spilled, reg_mem, reg_spill, _ = _run_pair(
            genome_reads, summit_gpu(2), config, "gpu", tmp_path, stages=("bloom", "balanced")
        )
        assert summarize_result(spilled) == summarize_result(mem)
        assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem)

    def test_traffic_records_identical(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        mem, spilled, _, _, _ = _run_pair(genome_reads, summit_gpu(2), config, "gpu", tmp_path)
        assert len(mem.traffic.records) == len(spilled.traffic.records)
        for a, b in zip(mem.traffic.records, spilled.traffic.records):
            assert a.op == b.op and a.label == b.label
            assert np.array_equal(a.bytes_matrix, b.bytes_matrix)
            assert (a.items_matrix is None) == (b.items_matrix is None)
            if a.items_matrix is not None:
                assert np.array_equal(a.items_matrix, b.items_matrix)

    def test_spill_wall_metrics_recorded(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        _, _, _, reg_spill, _ = _run_pair(genome_reads, summit_gpu(2), config, "gpu", tmp_path)
        snap = reg_spill.snapshot()
        for name in (
            "spill_bytes_written_total",
            "spill_bytes_read_total",
            "spill_partitions_total",
            "spill_merge_runs_total",
        ):
            assert name in snap, name
            assert snap[name]["wall"] is True
            assert sum(s["value"] for s in snap[name]["samples"]) > 0
        # ...and none of them leak into the model snapshot.
        assert not any(k.startswith("spill_") for k in reg_spill.snapshot(include_wall=False))

    def test_spool_directory_cleaned_up(self, genome_reads, tmp_path):
        config = PipelineConfig(k=15, mode="kmer")
        _, _, _, _, spill_dir = _run_pair(genome_reads, summit_gpu(1), config, "gpu", tmp_path)
        assert spill_dir.exists()  # the user-provided root stays
        assert list(spill_dir.iterdir()) == []  # per-run spools are removed

    def test_verify_exchange_runs_on_spilled_partitions(self, genome_reads, tmp_path):
        # verify_exchange checksums the memmapped partition files; a run
        # with verification on must still succeed and stay identical.
        config = PipelineConfig(k=17, mode="kmer", n_rounds=2)
        mem, spilled, _, _, _ = _run_pair(
            genome_reads, summit_gpu(2), config, "gpu", tmp_path, verify_exchange=True
        )
        assert summarize_result(spilled) == summarize_result(mem)


class TestHostMemoryBudget:
    def test_budget_splits_rounds_identically_on_all_paths(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=1)
        cluster = summit_gpu(2)
        budget = dict(host_memory_budget=16_000)
        staged = run_pipeline(
            genome_reads, cluster, config, backend="gpu", options=EngineOptions(**budget)
        )
        spilled = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(spill_dir=tmp_path, **budget),
        )
        fused = run_pipeline(
            genome_reads, cluster, config, backend="gpu", options=EngineOptions(fused=True, **budget)
        )
        assert staged.n_rounds_used > 1
        assert staged.n_rounds_used == spilled.n_rounds_used == fused.n_rounds_used
        assert summarize_result(spilled) == summarize_result(staged)
        assert summarize_result(fused) == summarize_result(staged)

    def test_budget_applies_to_cpu_backend(self, genome_reads):
        config = PipelineConfig(k=15, mode="kmer", n_rounds=1)
        tight = run_pipeline(
            genome_reads,
            summit_cpu(2),
            config,
            backend="cpu",
            options=EngineOptions(host_memory_budget=16_000),
        )
        free = run_pipeline(genome_reads, summit_cpu(2), config, backend="cpu", options=EngineOptions())
        assert tight.n_rounds_used > free.n_rounds_used
        assert tight.spectrum.equals(free.spectrum)

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="host_memory_budget"):
            EngineOptions(host_memory_budget=0)
        with pytest.raises(ValueError, match="host_memory_budget"):
            EngineOptions(host_memory_budget=-1)


class TestSpillFallbacks:
    def test_custom_exchange_falls_back_in_memory(self, caplog, tmp_path):
        import dataclasses

        from repro.core.stages.registry import resolve
        from repro.core.stages.scheduler import RoundScheduler
        from repro.core.stages.standard import AlltoallvExchange

        class CustomExchange(AlltoallvExchange):
            pass

        config = PipelineConfig(k=15, mode="kmer")
        opts = EngineOptions(spill_dir=tmp_path)
        comp = resolve("gpu:kmer", config, opts)
        custom = dataclasses.replace(comp, exchange=CustomExchange())
        assert supports_spill(comp)
        assert not supports_spill(custom)

        reads = simulate_dataset(genome_length=3000, coverage=3, seed=5)
        cluster = summit_gpu(1)
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            fallback = RoundScheduler(cluster, config, custom, opts).run(reads)
        assert any("engine.spill.fallback" in rec.message for rec in caplog.records)
        mem = run_pipeline(reads, cluster, config, backend="gpu", options=EngineOptions())
        assert fallback.spectrum.equals(mem.spectrum)
        assert list(tmp_path.iterdir()) == []  # nothing was spooled

    def test_spill_plus_fused_runs_blocked_composition(self, caplog, genome_reads, tmp_path):
        """``fused=True`` + ``spill_dir`` is a real strategy, not a fallback."""
        from repro.telemetry.spans import SpanRecorder

        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        cluster = summit_gpu(2)
        mem = run_pipeline(genome_reads, cluster, config, backend="gpu", options=EngineOptions())
        rec = SpanRecorder()
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            both = run_pipeline(
                genome_reads,
                cluster,
                config,
                backend="gpu",
                options=EngineOptions(spill_dir=tmp_path, fused=True, span_recorder=rec),
            )
        assert not any("engine.spill.fallback" in rec_.message for rec_ in caplog.records)
        assert not any("engine.fused.fallback" in rec_.message for rec_ in caplog.records)
        assert summarize_result(both) == summarize_result(mem)
        run_span = next(s for s in rec.all_spans() if s.name == "run")
        assert run_span.meta["strategy"] == "fused-spill"
        names = {s.name.split("-round")[0] for s in rec.all_spans()}
        assert {"spill:spool", "spill:read", "fused:count", "fused:merge"} <= names
        assert "spill:run-write" not in names  # no external run files on this path
        assert list(tmp_path.iterdir()) == []  # spool cleaned up

    def test_fused_spill_custom_stages_fall_back_to_staged_spill(self, caplog, genome_reads, tmp_path):
        """Custom count stage: spilling still works, via the staged loop."""
        import dataclasses

        from repro.core.stages.registry import resolve
        from repro.core.stages.scheduler import RoundScheduler
        from repro.core.stages.standard import TableCount

        class CustomCount(TableCount):
            pass

        config = PipelineConfig(k=15, mode="kmer")
        opts = EngineOptions(spill_dir=tmp_path, fused=True)
        custom = dataclasses.replace(resolve("gpu:kmer", config, opts), count=CustomCount())
        cluster = summit_gpu(1)
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            spilled = RoundScheduler(cluster, config, custom, opts).run(genome_reads)
        assert any("engine.fused.fallback" in rec.message for rec in caplog.records)
        mem = run_pipeline(genome_reads, cluster, config, backend="gpu", options=EngineOptions())
        assert spilled.spectrum.equals(mem.spectrum)

    def test_table_dir_on_staged_path_warns_and_stays_resident(self, caplog, genome_reads, tmp_path):
        config = PipelineConfig(k=15, mode="kmer")
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            staged = run_pipeline(
                genome_reads,
                summit_gpu(1),
                config,
                backend="gpu",
                options=EngineOptions(table_dir=tmp_path),
            )
        assert any("engine.table.fallback" in rec.message for rec in caplog.records)
        mem = run_pipeline(genome_reads, summit_gpu(1), config, backend="gpu", options=EngineOptions())
        assert summarize_result(staged) == summarize_result(mem)
        assert list(tmp_path.iterdir()) == []  # no slabs were created


class TestFusedSpillIdentity:
    """Blocked fused×spill vs the in-memory fused path: bit-identical."""

    @pytest.mark.parametrize(
        "mode,canonical,n_rounds",
        [
            ("kmer", False, 1),
            ("kmer", True, 3),
            ("supermer", False, 2),
            ("supermer", True, 1),
        ],
    )
    def test_matches_in_memory_fused(self, genome_reads, tmp_path, mode, canonical, n_rounds):
        config = PipelineConfig(k=17, mode=mode, canonical=canonical, n_rounds=n_rounds)
        mem, spilled, reg_mem, reg_spill, _ = _run_pair(
            genome_reads, summit_gpu(2), config, "gpu", tmp_path, fused=True
        )
        expected, actual = summarize_result(mem), summarize_result(spilled)
        for key in expected:
            assert actual[key] == expected[key], f"field {key!r} diverged"
        assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem)

    def test_matches_exact_reference(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        spilled = run_pipeline(
            genome_reads,
            summit_gpu(2),
            config,
            backend="gpu",
            options=EngineOptions(spill_dir=tmp_path, fused=True),
        )
        assert spilled.spectrum.equals(count_kmers_exact(genome_reads, 17))

    def test_cpu_backend(self, genome_reads, tmp_path):
        config = PipelineConfig(k=15, mode="kmer")
        mem, spilled, reg_mem, reg_spill, _ = _run_pair(
            genome_reads, summit_cpu(2), config, "cpu", tmp_path, fused=True
        )
        assert summarize_result(spilled) == summarize_result(mem)
        assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem)

    def test_with_plugins(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer")
        mem, spilled, reg_mem, reg_spill, _ = _run_pair(
            genome_reads, summit_gpu(2), config, "gpu", tmp_path, fused=True, stages=("bloom", "balanced")
        )
        assert summarize_result(spilled) == summarize_result(mem)
        assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem)

    def test_matches_staged_spill(self, genome_reads, tmp_path):
        """The two out-of-core strategies agree with each other too."""
        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        cluster = summit_gpu(2)
        staged = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(spill_dir=tmp_path / "a"),
        )
        fused = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(spill_dir=tmp_path / "b", fused=True),
        )
        assert summarize_result(fused) == summarize_result(staged)

    def test_host_budget_splits_rounds_identically(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=1)
        cluster = summit_gpu(2)
        staged = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(host_memory_budget=16_000),
        )
        spilled = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(spill_dir=tmp_path, fused=True, host_memory_budget=16_000),
        )
        assert staged.n_rounds_used > 1
        assert spilled.n_rounds_used == staged.n_rounds_used
        assert summarize_result(spilled) == summarize_result(staged)

    def test_streamed_batches_identical(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer")
        cluster = summit_gpu(2)
        n = genome_reads.n_reads
        batches = [
            genome_reads.select(range(n // 2)),
            genome_reads.select(range(n // 2, n)),
        ]
        mem = DistributedCounter(cluster, config, options=EngineOptions(fused=True))
        spilled = DistributedCounter(
            cluster, config, options=EngineOptions(fused=True, spill_dir=tmp_path)
        )
        for batch in batches:
            mem.add_reads(batch)
            spilled.add_reads(batch)
        assert summarize_counter(spilled) == summarize_counter(mem)
        assert spilled.insert_stats == mem.insert_stats
        assert spilled.spectrum().equals(mem.spectrum())

    def test_checkpoint_resumes_into_in_memory_counter(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="kmer")
        cluster = summit_gpu(2)
        spilled = DistributedCounter(
            cluster, config, options=EngineOptions(fused=True, spill_dir=tmp_path / "s")
        )
        spilled.add_reads(genome_reads)
        ckpt = spilled.save(tmp_path / "ckpt.npz")
        resumed = DistributedCounter(cluster, config)
        resumed.load(ckpt)
        assert resumed.spectrum().equals(spilled.spectrum())
        assert resumed.insert_stats == spilled.insert_stats


class TestMmapTable:
    """File-backed segmented-table slabs: same bits, reclaimable footprint."""

    def _case(self, seed=31):
        rng = np.random.default_rng(seed)
        segments = [
            rng.integers(0, 4096, size=n, dtype=np.uint64) for n in (700, 0, 350)
        ]
        offs = np.concatenate([[0], np.cumsum([s.size for s in segments])]).astype(np.int64)
        return np.concatenate(segments), offs

    def test_insert_and_regrow_identical_to_resident(self, tmp_path):
        from repro.gpu.segmented import SegmentedHashTable

        flat, offs = self._case()
        hints = [8, 8, 8]  # tiny: forces several regrows (slab generations)
        resident = SegmentedHashTable(hints, seed=3)
        mapped = SegmentedHashTable(hints, seed=3, table_dir=tmp_path)
        assert mapped.backing_dir is not None and mapped.backing_dir.exists()
        assert mapped.insert_flat(flat, offs) == resident.insert_flat(flat, offs)
        assert isinstance(mapped.keys, np.memmap)
        assert np.array_equal(np.asarray(mapped.keys), resident.keys)
        assert np.array_equal(np.asarray(mapped.counts), resident.counts)
        for r in range(3):
            mk, mc = mapped.items_of(r)
            rk, rc = resident.items_of(r)
            assert np.array_equal(mk, rk) and np.array_equal(mc, rc)
        # Exactly one live slab generation per array on disk.
        names = sorted(p.name for p in mapped.backing_dir.iterdir())
        assert len(names) == 2
        assert names[0].startswith("counts.g") and names[1].startswith("keys.g")

    def test_close_and_finalizer_remove_slabs(self, tmp_path):
        from repro.gpu.segmented import SegmentedHashTable

        flat, offs = self._case(seed=37)
        mapped = SegmentedHashTable([64, 64, 64], seed=1, table_dir=tmp_path)
        mapped.insert_flat(flat, offs)
        slab_dir = mapped.backing_dir
        assert slab_dir.exists()
        mapped.close()
        assert not slab_dir.exists()
        assert tmp_path.exists()  # the user-provided root stays

    def test_from_tables_adopts_into_mmap_backing(self, tmp_path):
        from repro.gpu.hashtable import DeviceHashTable
        from repro.gpu.segmented import SegmentedHashTable

        rng = np.random.default_rng(41)
        tables = [DeviceHashTable(64, seed=7) for _ in range(2)]
        segs = [rng.integers(0, 999, size=200, dtype=np.uint64) for _ in range(2)]
        for t, s in zip(tables, segs):
            t.insert_batch(s)
        mapped = SegmentedHashTable.from_tables(tables, table_dir=tmp_path)
        assert mapped.backing_dir is not None
        for r, t in enumerate(tables):
            mk, mc = mapped.items_of(r)
            rk, rc = t.items()
            assert np.array_equal(mk, rk) and np.array_equal(mc, rc)

    @pytest.mark.parametrize("spill", [False, True])
    def test_engine_identity_with_table_dir(self, genome_reads, tmp_path, spill):
        config = PipelineConfig(k=17, mode="supermer", n_rounds=2)
        cluster = summit_gpu(2)
        reg_mem, reg_map = MetricRegistry(), MetricRegistry()
        option_kw = dict(fused=True)
        if spill:
            option_kw["spill_dir"] = tmp_path / "spool"
        mem = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(telemetry=reg_mem, **option_kw),
        )
        mapped = run_pipeline(
            genome_reads,
            cluster,
            config,
            backend="gpu",
            options=EngineOptions(telemetry=reg_map, table_dir=tmp_path / "table", **option_kw),
        )
        assert summarize_result(mapped) == summarize_result(mem)
        assert snapshot_digest(reg_map) == snapshot_digest(reg_mem)
        assert list((tmp_path / "table").iterdir()) == []  # slabs reclaimed


class TestSpillCleanupOnFailure:
    """A raise anywhere inside the counting loop must not leak spool files."""

    def _assert_cleanup(self, caplog, spill_dir, run):
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            with pytest.raises(RuntimeError, match="boom"):
                run()
        cleanup = [rec.message for rec in caplog.records if "engine.spill.cleanup" in rec.message]
        assert cleanup, "no engine.spill.cleanup event was emitted"
        assert "files=" in cleanup[0]
        assert list(spill_dir.iterdir()) == []  # spool removed despite the raise

    def test_staged_spill_raise_removes_spool(self, caplog, genome_reads, tmp_path, monkeypatch):
        import repro.core.stages.spill as spill_mod

        def boom(*args, **kwargs):
            raise RuntimeError("boom")

        # external_merge runs after the run files are written: the spool is
        # at its fullest when the failure lands.
        monkeypatch.setattr(spill_mod, "external_merge", boom)
        config = PipelineConfig(k=15, mode="kmer")
        self._assert_cleanup(
            caplog,
            tmp_path,
            lambda: run_pipeline(
                genome_reads,
                summit_gpu(1),
                config,
                backend="gpu",
                options=EngineOptions(spill_dir=tmp_path),
            ),
        )

    def test_fused_spill_raise_removes_spool(self, caplog, genome_reads, tmp_path, monkeypatch):
        import repro.core.stages.spill as spill_mod

        def boom(*args, **kwargs):
            raise RuntimeError("boom")

        # The segmented table is built after every round has spooled.
        monkeypatch.setattr(spill_mod, "SegmentedHashTable", boom)
        config = PipelineConfig(k=15, mode="kmer")
        self._assert_cleanup(
            caplog,
            tmp_path,
            lambda: run_pipeline(
                genome_reads,
                summit_gpu(1),
                config,
                backend="gpu",
                options=EngineOptions(spill_dir=tmp_path, fused=True),
            ),
        )


class TestHostBudgetFloor:
    """A budget below one received item's working set must fail loudly."""

    @pytest.mark.parametrize(
        "option_kw",
        [
            {},
            {"fused": True},
            {"spill": True},
            {"fused": True, "spill": True},
        ],
        ids=["staged", "fused", "spill", "fused-spill"],
    )
    def test_sub_floor_budget_raises_with_floor(self, genome_reads, tmp_path, option_kw):
        kw = dict(option_kw)
        if kw.pop("spill", False):
            kw["spill_dir"] = tmp_path
        config = PipelineConfig(k=17, mode="kmer")
        with pytest.raises(ValueError, match="working-set floor") as excinfo:
            run_pipeline(
                genome_reads,
                summit_gpu(2),
                config,
                backend="gpu",
                options=EngineOptions(host_memory_budget=16, **kw),
            )
        # The message reports the computed floor (one received item's
        # working set — ~47 B for 8-byte k-mer wire items at multiplier 1).
        msg = str(excinfo.value)
        floor = int(msg.split("floor of one received item: ")[1].split(" bytes")[0])
        assert floor > 16

    def test_streamed_counter_reports_floor(self, genome_reads, tmp_path):
        # The CLI counts through DistributedCounter.run_batch, which is
        # single-round by construction — the floor must still be
        # reported there, not silently ignored.
        config = PipelineConfig(k=17, mode="kmer")
        counter = DistributedCounter(
            summit_gpu(2),
            config,
            options=EngineOptions(host_memory_budget=16, spill_dir=tmp_path),
        )
        with pytest.raises(ValueError, match="working-set floor"):
            counter.add_reads(genome_reads)

    def test_floor_scales_with_work_multiplier(self, genome_reads):
        # 2 kB/rank is plenty at scale 1 but under the ~3 kB floor one
        # received item costs at work_multiplier 64.
        config = PipelineConfig(k=17, mode="kmer")
        with pytest.raises(ValueError, match="work_multiplier 64"):
            run_pipeline(
                genome_reads,
                summit_gpu(2),
                config,
                backend="gpu",
                options=EngineOptions(host_memory_budget=2_000, work_multiplier=64.0),
            )


class TestSpillBatches:
    def test_streamed_batches_identical(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="supermer")
        cluster = summit_gpu(2)
        n = genome_reads.n_reads
        batches = [
            genome_reads.select(range(n // 3)),
            genome_reads.select(range(n // 3, 2 * n // 3)),
            genome_reads.select(range(2 * n // 3, n)),
        ]
        mem = DistributedCounter(cluster, config)
        spilled = DistributedCounter(cluster, config, options=EngineOptions(spill_dir=tmp_path))
        for batch in batches:
            mem.add_reads(batch)
            spilled.add_reads(batch)
        assert summarize_counter(spilled) == summarize_counter(mem)
        assert spilled.insert_stats == mem.insert_stats
        assert spilled.spectrum().equals(mem.spectrum())

    def test_spilled_checkpoint_resumes_into_in_memory_counter(self, genome_reads, tmp_path):
        config = PipelineConfig(k=17, mode="kmer")
        cluster = summit_gpu(2)
        spilled = DistributedCounter(cluster, config, options=EngineOptions(spill_dir=tmp_path / "s"))
        spilled.add_reads(genome_reads)
        ckpt = spilled.save(tmp_path / "ckpt.npz")
        resumed = DistributedCounter(cluster, config)
        resumed.load(ckpt)
        assert resumed.spectrum().equals(spilled.spectrum())
        assert resumed.insert_stats == spilled.insert_stats


class TestExternalMerge:
    def _reference(self, runs, k):
        from repro.core.stages.standard import SpectrumMerge

        return SpectrumMerge().merge_items([(k_, c_) for k_, c_ in runs], k)

    def test_empty(self):
        spec = external_merge([], 15)
        assert spec.n_distinct == 0 and spec.n_total == 0

    def test_empty_runs(self):
        runs = [(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64))] * 3
        assert external_merge(runs, 15).n_distinct == 0

    @pytest.mark.parametrize("block", [1, 2, 7, MERGE_BLOCK_KEYS])
    def test_matches_unique_reference(self, block):
        rng = np.random.default_rng(11)
        runs = []
        for _ in range(5):
            keys = np.unique(rng.integers(0, 500, size=rng.integers(0, 120), dtype=np.uint64))
            counts = rng.integers(1, 50, size=keys.size, dtype=np.int64)
            runs.append((keys, counts))
        merged = external_merge(runs, 15, block=block)
        ref = self._reference(runs, 15)
        assert np.array_equal(merged.values, ref.values)
        assert np.array_equal(merged.counts, ref.counts)

    @pytest.mark.parametrize("block", [1, 3, 64])
    def test_duplicate_keys_across_runs_aggregate(self, block):
        # Canonical supermer mode can split one canonical k-mer across two
        # owners — equal keys across runs must sum.
        runs = [
            (np.array([1, 5, 9], dtype=np.uint64), np.array([2, 3, 4], dtype=np.int64)),
            (np.array([5, 9, 12], dtype=np.uint64), np.array([10, 1, 1], dtype=np.int64)),
            (np.array([9], dtype=np.uint64), np.array([100], dtype=np.int64)),
        ]
        merged = external_merge(runs, 15, block=block)
        assert merged.values.tolist() == [1, 5, 9, 12]
        assert merged.counts.tolist() == [2, 13, 105, 1]

    def test_single_run_passthrough(self):
        keys = np.arange(10, dtype=np.uint64)
        counts = np.arange(1, 11, dtype=np.int64)
        merged = external_merge([(keys, counts)], 15, block=4)
        assert np.array_equal(merged.values, keys)
        assert np.array_equal(merged.counts, counts)

    def test_duplicate_key_straddles_block_boundary(self):
        # One key repeated across runs so its occurrences land on both
        # sides of an emission block boundary — the safe-emission bound
        # must hold the key back until every run has drained it.
        runs = [
            (np.array([0, 7], dtype=np.uint64), np.array([1, 10], dtype=np.int64)),
            (np.array([7], dtype=np.uint64), np.array([20], dtype=np.int64)),
            (np.array([7, 8], dtype=np.uint64), np.array([30], dtype=np.int64)[[0, 0]]),
        ]
        merged = external_merge(runs, 15, block=2)
        assert merged.values.tolist() == [0, 7, 8]
        assert merged.counts.tolist() == [1, 60, 30]

    @pytest.mark.parametrize("trial", range(4))
    def test_property_overlapping_runs_with_empties(self, trial):
        # Randomized: runs share keys (forcing cross-run aggregation) and
        # some runs are empty; every block size must match the in-memory
        # reference merge.
        rng = np.random.default_rng(0xE4 + trial)
        runs = []
        for _ in range(rng.integers(1, 7)):
            if rng.random() < 0.25:
                runs.append((np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)))
                continue
            # A small key space guarantees heavy overlap between runs.
            keys = np.unique(rng.integers(0, 64, size=rng.integers(1, 80), dtype=np.uint64))
            counts = rng.integers(1, 1000, size=keys.size, dtype=np.int64)
            runs.append((keys, counts))
        ref = self._reference(runs, 15)
        for block in (1, 2, 3, 16, MERGE_BLOCK_KEYS):
            merged = external_merge(runs, 15, block=block)
            assert np.array_equal(merged.values, ref.values), f"block={block}"
            assert np.array_equal(merged.counts, ref.counts), f"block={block}"


class TestSpillSpool:
    def test_missing_partition_maps_empty(self, tmp_path):
        spool = SpillSpool(tmp_path)
        try:
            arr = spool.map_partition("x", 0, np.uint64)
            assert arr.size == 0 and arr.dtype == np.uint64
        finally:
            spool.close()

    def test_partition_roundtrip_in_source_order(self, tmp_path):
        spool = SpillSpool(tmp_path)
        try:
            segs = [np.array([1, 2], dtype=np.uint64), np.array([], dtype=np.uint64), np.array([3], dtype=np.uint64)]
            spool.write_partition("lbl", 1, segs)
            assert spool.map_partition("lbl", 1, np.uint64).tolist() == [1, 2, 3]
        finally:
            spool.close()

    def test_close_removes_spool(self, tmp_path):
        spool = SpillSpool(tmp_path)
        spool.write_partition("lbl", 0, [np.array([7], dtype=np.uint64)])
        assert spool.dir.exists()
        spool.close()
        assert not spool.dir.exists()
        assert tmp_path.exists()


# ---------------------------------------------------------------------------
# randomized differential suite (mirrors tests/test_fused_property.py)
# ---------------------------------------------------------------------------

N_TRIALS = 6


def _random_case(rng: random.Random) -> tuple[dict, dict, str, int]:
    mode = rng.choice(["kmer", "supermer"])
    k = rng.choice([13, 15, 17, 21])
    config: dict = {"k": k, "mode": mode}
    if mode == "supermer":
        m = rng.choice([5, 7])
        config["minimizer_len"] = m
        config["window"] = min(rng.choice([k - m + 1, 2 * (k - m + 1) - 1]), 33 - k)
    if rng.random() < 0.4:
        config["canonical"] = True
    if rng.random() < 0.4:
        config["n_rounds"] = rng.choice([2, 3])
    options: dict = {}
    if rng.random() < 0.4:
        options["work_multiplier"] = rng.choice([4.0, 64.0])
    if rng.random() < 0.5:
        options["host_memory_budget"] = rng.choice([8_000, 50_000, 1_000_000])
    if rng.random() < 0.5:
        options["fused"] = True  # spilled side becomes blocked fused×spill
    backend = rng.choice(["gpu", "gpu", "cpu"])
    nodes = rng.choice([1, 2, 3])
    return config, options, backend, nodes


def _reads(rng: random.Random):
    genome = GenomeSimulator(
        rng.choice([3_000, 8_000]), repeat_fraction=rng.uniform(0.0, 0.3), seed=rng.randrange(1 << 16)
    ).generate_codes()
    return ReadSimulator(
        genome,
        coverage=rng.choice([3, 5]),
        length_profile=ReadLengthProfile(kind="lognormal", mean=rng.choice([250, 400]), sigma=0.4, min_len=60),
        error_rate=rng.choice([0.0, 0.01]),
        seed=rng.randrange(1 << 16),
    ).generate()


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_spill_equals_in_memory_on_random_configuration(trial, tmp_path):
    rng = random.Random(0x5B111 + trial)
    config_kw, option_kw, backend, nodes = _random_case(rng)
    reads = _reads(rng)
    config = PipelineConfig(**config_kw)
    cluster = summit_gpu(nodes) if backend == "gpu" else summit_cpu(nodes)
    label = f"trial {trial}: {backend}x{nodes} {config_kw} {option_kw}"

    mem, spilled, reg_mem, reg_spill, _ = _run_pair(
        reads, cluster, config, backend, tmp_path, **option_kw
    )
    expected, actual = summarize_result(mem), summarize_result(spilled)
    for key in expected:
        assert actual[key] == expected[key], f"{label}: field {key!r} diverged"
    assert snapshot_digest(reg_spill) == snapshot_digest(reg_mem), f"{label}: telemetry diverged"
