"""Tests for FASTA/FASTQ I/O."""

from __future__ import annotations

import gzip

import pytest

from repro.dna.fastq import SequenceRecord, read_fasta, read_fastq, sniff_format, write_fasta, write_fastq


@pytest.fixture
def records():
    return [
        SequenceRecord("read/1", "ACGTACGT", "IIIIIIII"),
        SequenceRecord("read/2 extra words", "TTTT", "!!!!"),
        SequenceRecord("read/3", "A" * 200),
    ]


class TestFastq:
    def test_roundtrip(self, tmp_path, records):
        path = tmp_path / "x.fastq"
        assert write_fastq(path, records) == 3
        back = list(read_fastq(path))
        assert [r.name for r in back] == [r.name for r in records]
        assert [r.sequence for r in back] == [r.sequence for r in records]
        assert back[0].quality == "IIIIIIII"

    def test_placeholder_quality(self, tmp_path, records):
        path = tmp_path / "x.fastq"
        write_fastq(path, records)
        back = list(read_fastq(path))
        assert back[2].quality == "I" * 200

    def test_gzip_roundtrip(self, tmp_path, records):
        path = tmp_path / "x.fastq.gz"
        write_fastq(path, records)
        with gzip.open(path, "rt") as fh:
            assert fh.read(1) == "@"
        assert [r.sequence for r in read_fastq(path)] == [r.sequence for r in records]

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("ACGT\nACGT\n+\nIIII\n")
        with pytest.raises(ValueError, match="expected '@'"):
            list(read_fastq(path))

    def test_bad_separator(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@r\nACGT\nIIII\nIIII\n")
        with pytest.raises(ValueError, match="expected '\\+'"):
            list(read_fastq(path))

    def test_quality_length_mismatch(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@r\nACGT\n+\nIII\n")
        with pytest.raises(ValueError, match="mismatch"):
            list(read_fastq(path))

    def test_record_validates_quality_length(self):
        with pytest.raises(ValueError):
            SequenceRecord("r", "ACGT", "II")

    def test_len(self):
        assert len(SequenceRecord("r", "ACGTA")) == 5

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fastq"
        path.write_text("")
        assert list(read_fastq(path)) == []


class TestFasta:
    def test_roundtrip_with_wrapping(self, tmp_path):
        recs = [SequenceRecord("chr1 desc", "ACGT" * 50), SequenceRecord("chr2", "TT")]
        path = tmp_path / "x.fasta"
        assert write_fasta(path, recs, width=37) == 2
        back = list(read_fasta(path))
        assert back[0].name == "chr1 desc"
        assert back[0].sequence == "ACGT" * 50
        assert back[1].sequence == "TT"

    def test_data_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n>x\nACGT\n")
        with pytest.raises(ValueError, match="before first"):
            list(read_fasta(path))

    def test_invalid_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fasta", [], width=0)

    def test_gzip(self, tmp_path):
        path = tmp_path / "x.fasta.gz"
        write_fasta(path, [SequenceRecord("a", "ACGT")])
        assert list(read_fasta(path))[0].sequence == "ACGT"


class TestSniff:
    def test_sniff(self, tmp_path):
        fq = tmp_path / "a.fastq"
        write_fastq(fq, [SequenceRecord("r", "ACGT")])
        fa = tmp_path / "a.fasta"
        write_fasta(fa, [SequenceRecord("r", "ACGT")])
        assert sniff_format(fq) == "fastq"
        assert sniff_format(fa) == "fasta"

    def test_sniff_unknown(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("hello")
        with pytest.raises(ValueError):
            sniff_format(path)
