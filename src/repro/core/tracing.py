"""Timeline export of a simulated run (Chrome trace-event format).

Turns a :class:`CountResult` into the JSON trace format consumed by
``chrome://tracing`` / Perfetto / Speedscope: one row per rank with parse /
exchange / count spans in model time, so the bulk-synchronous structure and
the imbalance (ragged phase edges) are visible at a glance.

The exchange is a single global span (bulk-synchronous collective); parse
and count use each rank's own modeled duration, aligned to the phase start
as on the real machine.

A second timeline lives here too: :class:`WallClockRecorder` captures the
*host* wall-clock span of each rank's phase body as the engine actually
executed it.  Under the sequential engine the spans form a staircase (one
rank after another); under the parallel engine (``REPRO_PARALLEL``) they
overlap, and :meth:`WallClockRecorder.overlap_factor` quantifies by how
much.  Model time and wall time are deliberately separate timelines —
parallel execution changes only the second.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .results import CountResult

__all__ = [
    "trace_events",
    "write_chrome_trace",
    "WallSpan",
    "WallClockRecorder",
    "wall_trace_events",
    "write_wall_trace",
]

_US = 1e6  # trace timestamps are microseconds


def trace_events(result: CountResult, *, max_ranks: int | None = 64) -> list[dict[str, Any]]:
    """Build the trace-event list for one run.

    ``max_ranks`` caps the number of emitted rank rows (traces with
    thousands of rows are unreadable); the max-duration rank in each phase
    is always included so the critical path is never dropped.
    """
    p = result.cluster.n_ranks
    ranks = list(range(p))
    if max_ranks is not None and p > max_ranks:
        keep = set(range(max_ranks - 2))
        keep.add(int(result.per_rank_parse.argmax()))
        keep.add(int(result.per_rank_count.argmax()))
        ranks = sorted(keep)

    events: list[dict[str, Any]] = []

    def span(name: str, rank: int, start_s: float, dur_s: float, **args: Any) -> None:
        events.append(
            {
                "name": name,
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "ts": start_s * _US,
                "dur": max(dur_s, 0.0) * _US,
                "cat": "pipeline",
                "args": args,
            }
        )

    t = result.timing
    for r in ranks:
        span("parse", r, 0.0, float(result.per_rank_parse[r]))
    exchange_start = t.parse
    for r in ranks:
        span(
            "exchange",
            r,
            exchange_start,
            t.exchange,
            bytes=int(result.exchanged_bytes),
            items=int(result.exchanged_items),
        )
    count_start = exchange_start + t.exchange
    for r in ranks:
        span("count", r, count_start, float(result.per_rank_count[r]), received=int(result.received_kmers[r]))

    # Rank-row metadata so viewers label threads.
    for r in ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": r,
                "args": {"name": f"rank {r} (node {result.cluster.node_of(r)})"},
            }
        )
    return events


@dataclass(frozen=True)
class WallSpan:
    """One rank's phase body as executed on the host: [start_s, end_s)."""

    name: str  # phase label, e.g. "parse", "count-round0"
    rank: int
    start_s: float
    end_s: float

    @property
    def dur_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


class WallClockRecorder:
    """Thread-safe log of per-rank wall-clock phase spans.

    Pass one via ``EngineOptions(span_recorder=...)``; the engine records a
    span per (phase, rank) pair with host ``perf_counter`` timestamps.
    Worker threads append concurrently, so the log is lock-protected; spans
    are returned sorted by (start, rank) so output never depends on
    completion order.
    """

    def __init__(self) -> None:
        self._spans: list[WallSpan] = []
        self._lock = threading.Lock()

    def record(self, name: str, rank: int, start_s: float, end_s: float) -> None:
        with self._lock:
            self._spans.append(WallSpan(name=name, rank=rank, start_s=start_s, end_s=end_s))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def spans(self, name: str | None = None) -> list[WallSpan]:
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return sorted(spans, key=lambda s: (s.start_s, s.rank))

    def phases(self) -> list[str]:
        """Distinct phase names in first-appearance order."""
        seen: dict[str, None] = {}
        with self._lock:
            for s in self._spans:
                seen.setdefault(s.name, None)
        return list(seen)

    def busy_seconds(self, name: str | None = None) -> float:
        """Sum of span durations (total rank-seconds of work)."""
        return sum(s.dur_s for s in self.spans(name))

    def elapsed_seconds(self, name: str | None = None) -> float:
        """Wall window covering the spans (max end - min start)."""
        spans = self.spans(name)
        if not spans:
            return 0.0
        return max(s.end_s for s in spans) - min(s.start_s for s in spans)

    def overlap_factor(self, name: str | None = None) -> float:
        """Achieved concurrency: busy seconds / elapsed seconds.

        1.0 means fully serialized (the sequential engine); N means N
        ranks' work overlapped perfectly on average.  An empty recorder (or
        one whose spans are all zero-length) reports the neutral 1.0 — "no
        concurrency evidence either way" — so ratio consumers never divide
        by zero.
        """
        elapsed = self.elapsed_seconds(name)
        return self.busy_seconds(name) / elapsed if elapsed > 0 else 1.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def wall_trace_events(recorder: WallClockRecorder) -> list[dict[str, Any]]:
    """Chrome trace events of the recorded wall-clock spans.

    Timestamps are rebased so the earliest span starts at 0; one trace row
    per rank (``tid``), so overlap between ranks is visible exactly as the
    host executed it.  An empty recorder yields an empty (valid) event list.
    """
    spans = recorder.spans()
    if not spans:
        return []
    t0 = min(s.start_s for s in spans)
    events: list[dict[str, Any]] = []
    for s in spans:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "pid": 1,
                "tid": s.rank,
                "ts": (s.start_s - t0) * _US,
                "dur": s.dur_s * _US,
                "cat": "wall",
                "args": {},
            }
        )
    for rank in sorted({s.rank for s in spans}):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": rank, "args": {"name": f"rank {rank} (wall)"}}
        )
    return events


def write_wall_trace(recorder: WallClockRecorder, path: str | Path) -> Path:
    """Write the recorded wall-clock spans as a Chrome trace JSON file."""
    path = Path(path)
    payload = {
        "traceEvents": wall_trace_events(recorder),
        "displayTimeUnit": "ms",
        "metadata": {
            "busy_seconds": recorder.busy_seconds(),
            "elapsed_seconds": recorder.elapsed_seconds(),
            "overlap_factor": recorder.overlap_factor(),
        },
    }
    path.write_text(json.dumps(payload))
    return path


def write_chrome_trace(
    result: CountResult,
    path: str | Path,
    *,
    max_ranks: int | None = 64,
    registry: "Any | None" = None,
) -> Path:
    """Write the run's timeline as a Chrome trace JSON file.

    Passing a :class:`repro.telemetry.MetricRegistry` merges its counter
    tracks (``ph: "C"`` events) into the timeline, so metric magnitudes —
    exchange bytes, probe counts, phase seconds — render alongside the
    phase spans in Perfetto.
    """
    path = Path(path)
    events = trace_events(result, max_ranks=max_ranks)
    if registry is not None:
        from ..telemetry import metric_trace_events

        events.extend(metric_trace_events(registry, result=result))
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "config": result.config.describe(),
            "cluster": result.cluster.name,
            "backend": result.backend,
            "total_model_seconds": result.timing.total,
        },
    }
    path.write_text(json.dumps(payload))
    return path
