"""Typed inter-stage buffers of the staged pipeline.

Every arrow in the stage graph has an explicit record type:

* parse → partition: :class:`ParsedItems` (items plus the routing keys the
  partitioner hashes);
* partition → exchange: :class:`RankParse` (destination-ordered buffers,
  the generalization of the old engine's private ``_RankParse``);
* exchange → count: :class:`ExchangeOutcome` (received buffers plus the
  modeled exchange-time breakdown);
* count → merge: :class:`CountOutcome` per rank (modeled time, instance
  count, hash-table insert statistics).

Keeping these records plain dataclasses (NumPy payloads, no behaviour) is
what lets compositions swap a stage implementation without touching its
neighbours: the buffer contract *is* the interface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...gpu.hashtable import InsertStats

__all__ = ["ParsedItems", "RankParse", "ExchangeOutcome", "CountOutcome", "add_link_seconds"]


def add_link_seconds(totals: dict[str, float], links: tuple[tuple[str, float], ...]) -> None:
    """Fold one round's per-link breakdown into a running ``name -> s`` dict.

    Shared by every engine so multi-round runs accumulate link rows the
    same way they accumulate ``alltoallv_seconds``; insertion order keeps
    links innermost-first, as the cost model emits them.
    """
    for name, seconds in links:
        totals[name] = totals.get(name, 0.0) + seconds


@dataclass
class ParsedItems:
    """One rank's parse output, before destination ordering.

    ``data`` holds the wire items (packed k-mers in k-mer mode, packed
    supermer words in supermer mode); ``route_keys`` holds the values the
    partition stage assigns owners to (the k-mers themselves, or the
    supermers' minimizers).  ``lengths`` carries per-supermer k-mer counts
    (``None`` in k-mer mode).
    """

    data: np.ndarray
    lengths: np.ndarray | None
    route_keys: np.ndarray
    n_kmers: int
    n_supermers: int
    supermer_bases: int


@dataclass
class RankParse:
    """Per-rank output of the parse phase: destination-ordered buffers."""

    data: np.ndarray  # packed k-mers, or packed supermer words
    lengths: np.ndarray | None  # supermer mode: per-item k-mer counts (uint8)
    counts: np.ndarray  # items per destination, shape (P,)
    time_s: float
    n_kmers_parsed: int
    n_supermers: int
    supermer_bases: int


@dataclass
class ExchangeOutcome:
    """All ranks' received buffers plus the exchange-phase time breakdown."""

    recv_data: list[np.ndarray]
    recv_lengths: list[np.ndarray] | None
    counts_matrix: np.ndarray  # items, [src, dst]
    seconds: float  # overhead + network + staging (the phase's bulk time)
    alltoallv_seconds: float  # MPI_Alltoallv routine time only (Fig. 8's metric)
    staging_seconds: float  # host<->device staging copies
    # Per-link (name, seconds) breakdown of the routed alltoallv, innermost
    # link first, with staging appended as a "host-staging" row when it
    # applies.  Empty only for legacy constructors.
    link_seconds: tuple[tuple[str, float], ...] = ()


@dataclass
class CountOutcome:
    """One rank's count-phase outcome for one round."""

    time_s: float
    n_instances: int  # k-mer instances processed (pre-filter, if any)
    insert_stats: InsertStats
