"""Synthetic genome and sequencing-read simulation.

The paper evaluates on real genomic FASTQ data (Table I).  Those files are
unavailable here, so this module generates the closest synthetic equivalents:
a random reference genome with a controllable *repeat structure* (repeats are
what skew the k-mer frequency distribution, which in turn drives the load
imbalance the paper measures in Table III and the non-linear scaling in
Fig. 9), and reads sampled from that reference at a target coverage with a
read-length profile and a substitution error model.

Length profiles model the two sequencing generations the paper discusses
(Section VI): "second generation" reads are short and near-constant length
(~100-250 bp); "third generation" reads are long and highly variable
(~1k-100k bp, log-normal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .alphabet import BASES
from .fastq import SequenceRecord
from .reads import ReadSet

__all__ = ["ReadLengthProfile", "GenomeSimulator", "ReadSimulator", "simulate_dataset"]


@dataclass(frozen=True)
class ReadLengthProfile:
    """Distribution of read lengths.

    ``kind="fixed"`` draws every read at ``mean`` bases (second generation).
    ``kind="lognormal"`` draws log-normal lengths with the given mean and
    sigma (of the underlying normal), clipped to ``[min_len, max_len]``
    (third generation).
    """

    kind: Literal["fixed", "lognormal"] = "fixed"
    mean: int = 150
    sigma: float = 0.5
    min_len: int = 50
    max_len: int = 100_000

    def __post_init__(self) -> None:
        if self.mean < 1:
            raise ValueError("mean read length must be positive")
        if not 0 < self.min_len <= self.max_len:
            raise ValueError("need 0 < min_len <= max_len")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` read lengths as an int64 array."""
        if self.kind == "fixed":
            return np.full(n, self.mean, dtype=np.int64)
        mu = np.log(self.mean) - self.sigma**2 / 2  # so E[length] == mean
        lengths = rng.lognormal(mean=mu, sigma=self.sigma, size=n)
        return np.clip(lengths, self.min_len, self.max_len).astype(np.int64)

    @classmethod
    def short_read(cls, length: int = 150) -> "ReadLengthProfile":
        """Illumina-like fixed-length profile."""
        return cls(kind="fixed", mean=length)

    @classmethod
    def long_read(cls, mean: int = 8_000, sigma: float = 0.6) -> "ReadLengthProfile":
        """PacBio/Nanopore-like log-normal profile."""
        return cls(kind="lognormal", mean=mean, sigma=sigma, min_len=500)


class GenomeSimulator:
    """Generates a random reference genome with tunable repeat content.

    The genome is built left to right in segments.  With probability
    ``repeat_fraction`` a segment is copied from a uniformly random earlier
    position (a duplication); otherwise it is i.i.d. random bases at the
    requested GC content.  Duplications are what give real genomes their
    heavy-tailed k-mer multiplicity spectrum; ``repeat_fraction=0`` yields an
    essentially repeat-free genome where almost every k-mer is unique per
    locus.
    """

    def __init__(
        self,
        length: int,
        *,
        gc_content: float = 0.5,
        repeat_fraction: float = 0.1,
        segment_length: int = 500,
        seed: int = 0,
    ) -> None:
        if length < 1:
            raise ValueError("genome length must be positive")
        if not 0.0 <= gc_content <= 1.0:
            raise ValueError("gc_content must be in [0, 1]")
        if not 0.0 <= repeat_fraction <= 1.0:
            raise ValueError("repeat_fraction must be in [0, 1]")
        if segment_length < 1:
            raise ValueError("segment_length must be positive")
        self.length = length
        self.gc_content = gc_content
        self.repeat_fraction = repeat_fraction
        self.segment_length = segment_length
        self.seed = seed

    def generate_codes(self) -> np.ndarray:
        """Return the genome as a uint8 storage-code array."""
        rng = np.random.default_rng(self.seed)
        # Base probabilities: split GC mass between C and G, AT between A and T.
        at = (1.0 - self.gc_content) / 2
        gc = self.gc_content / 2
        probs = np.array([at, gc, gc, at])  # A, C, G, T in storage order
        genome = np.empty(self.length, dtype=np.uint8)
        pos = 0
        while pos < self.length:
            seg = min(self.segment_length, self.length - pos)
            if pos > seg and rng.random() < self.repeat_fraction:
                src = int(rng.integers(0, pos - seg + 1))
                genome[pos : pos + seg] = genome[src : src + seg]
            else:
                genome[pos : pos + seg] = rng.choice(4, size=seg, p=probs).astype(np.uint8)
            pos += seg
        return genome

    def generate_string(self) -> str:
        """Return the genome as an ACGT string."""
        codes = self.generate_codes()
        lut = np.frombuffer(BASES.encode(), dtype=np.uint8)
        return lut[codes].tobytes().decode("ascii")


class ReadSimulator:
    """Samples sequencing reads from a reference at a target coverage.

    Read start positions are uniform over the reference; lengths follow the
    profile (truncated at the reference end); substitution errors are applied
    i.i.d. per base at ``error_rate`` (a new base is drawn uniformly from the
    three alternatives).  Enough reads are drawn for
    ``total_bases >= coverage * len(reference)``.
    """

    def __init__(
        self,
        reference: np.ndarray,
        *,
        coverage: float,
        length_profile: ReadLengthProfile,
        error_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        reference = np.ascontiguousarray(reference, dtype=np.uint8)
        if reference.size == 0:
            raise ValueError("reference must be non-empty")
        if coverage <= 0:
            raise ValueError("coverage must be positive")
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self.reference = reference
        self.coverage = coverage
        self.length_profile = length_profile
        self.error_rate = error_rate
        self.seed = seed

    def generate(self) -> ReadSet:
        """Simulate the reads and return them as a :class:`ReadSet`."""
        rng = np.random.default_rng(self.seed)
        ref = self.reference
        glen = ref.shape[0]
        target_bases = int(np.ceil(self.coverage * glen))
        # Over-draw length samples in chunks until coverage is met.
        lengths: list[int] = []
        starts: list[int] = []
        acc = 0
        est = max(1, target_bases // max(self.length_profile.mean, 1) + 1)
        while acc < target_bases:
            ls = self.length_profile.sample(est, rng)
            ss = rng.integers(0, glen, size=est)
            for length, start in zip(ls.tolist(), ss.tolist()):
                length = min(length, glen - start)
                if length < 1:
                    continue
                lengths.append(length)
                starts.append(start)
                acc += length
                if acc >= target_bases:
                    break
            est = max(16, (target_bases - acc) // max(self.length_profile.mean, 1) + 1)

        n = len(lengths)
        len_arr = np.asarray(lengths, dtype=np.int64)
        off_arr = np.empty(n, dtype=np.int64)
        total = int(len_arr.sum()) + n
        codes = np.full(total, 4, dtype=np.uint8)  # SENTINEL fill
        pos = 0
        for i in range(n):
            off_arr[i] = pos
            seg = ref[starts[i] : starts[i] + lengths[i]]
            codes[pos : pos + lengths[i]] = seg
            pos += lengths[i] + 1
        read_set = ReadSet(codes=codes, offsets=off_arr, lengths=len_arr)
        if self.error_rate > 0.0:
            read_set = _apply_substitutions(read_set, self.error_rate, rng)
        return read_set


def _apply_substitutions(reads: ReadSet, rate: float, rng: np.random.Generator) -> ReadSet:
    """Flip each base to one of the other three with probability ``rate``."""
    codes = reads.codes.copy()
    base_mask = codes < 4  # never mutate sentinels
    flips = (rng.random(codes.shape[0]) < rate) & base_mask
    # Add 1..3 mod 4 guarantees the substituted base differs from the original.
    deltas = rng.integers(1, 4, size=int(flips.sum()), dtype=np.uint8)
    codes[flips] = (codes[flips] + deltas) % 4
    return ReadSet(codes=codes, offsets=reads.offsets, lengths=reads.lengths)


def simulate_dataset(
    *,
    genome_length: int,
    coverage: float,
    length_profile: ReadLengthProfile | None = None,
    gc_content: float = 0.5,
    repeat_fraction: float = 0.1,
    error_rate: float = 0.0,
    seed: int = 0,
) -> ReadSet:
    """One-call convenience: simulate a genome, then reads over it."""
    profile = length_profile or ReadLengthProfile.short_read()
    genome = GenomeSimulator(
        genome_length,
        gc_content=gc_content,
        repeat_fraction=repeat_fraction,
        seed=seed,
    ).generate_codes()
    return ReadSimulator(
        genome,
        coverage=coverage,
        length_profile=profile,
        error_rate=error_rate,
        seed=seed + 1,
    ).generate()


def reads_to_records(reads: ReadSet, prefix: str = "read") -> list[SequenceRecord]:
    """Convert a ``ReadSet`` to FASTQ-writable records (placeholder quality)."""
    return [SequenceRecord(name=f"{prefix}/{i}", sequence=reads.read_string(i)) for i in range(reads.n_reads)]
