"""Ablation: supermer window length (Section IV-B's design trade-off).

"By partitioning the reads into windows, we limit the length of the
supermers" — small windows chop supermers (more items, less compression),
while the largest window that still packs one 64-bit word (16 for k=17)
maximizes compression.  The paper chose 15; this sweep shows the curve.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, write_report

DATASET = "celegans40x"
NODES = 16
WINDOWS = [2, 4, 8, 15, 16]


def test_ablation_window(benchmark, cache, results_dir):
    def experiment():
        kmer = cache.run(DATASET, n_nodes=NODES, backend="gpu", mode="kmer")
        sweeps = {
            w: cache.run(DATASET, n_nodes=NODES, backend="gpu", mode="supermer", minimizer_len=7, window=w)
            for w in WINDOWS
        }
        return kmer, sweeps

    kmer, sweeps = run_once(benchmark, experiment)

    rows = []
    for w, r in sweeps.items():
        rows.append(
            [
                w,
                r.exchanged_items,
                f"{r.mean_supermer_length:.2f}",
                f"{kmer.exchanged_items / r.exchanged_items:.2f}x",
                f"{r.exchange_speedup_over(kmer):.2f}x",
            ]
        )
    text = format_table(
        ["window", "supermers", "mean length", "item compression", "alltoallv speedup"],
        rows,
        title=f"Ablation: window length sweep ({DATASET}, {NODES} nodes, m=7; paper used 15)",
    )
    write_report("ablation_window", text, results_dir)

    # Compression improves monotonically with window size.
    items = [sweeps[w].exchanged_items for w in WINDOWS]
    assert all(b <= a for a, b in zip(items, items[1:]))
    # Mean supermer length grows with the window and is capped by it.
    for w, r in sweeps.items():
        assert r.mean_supermer_length <= w + 17 - 1 + 1e-9
    # The paper's window (15) achieves most of the maximal (16) compression.
    assert sweeps[15].exchanged_items < 1.1 * sweeps[16].exchanged_items
    # Tiny windows destroy most of the benefit.
    assert sweeps[2].exchanged_items > 2 * sweeps[15].exchanged_items
