"""Machine calibration files: declarative TOML/JSON -> :class:`MachineSpec`.

A calibration file describes a machine the same way the built-in presets
do, so any cluster can be swapped in without touching code::

    # my_cluster.toml
    name = "my-cluster"
    description = "4xMI-class nodes on 200 GbE"
    base = "summit-gpu"          # optional: start from a preset, override below

    [node]
    gpus_per_node = 4
    ranks_per_node = 4

    [network]
    injection_bw = 50e9
    alltoallv_efficiency = 0.05
    # hierarchical fields (see repro.machines.network.NetworkSpec):
    switch_levels = 2
    switch_radix = 36
    switch_uplink_bw = [200e9, 3600e9]
    eager_threshold = 16384
    incast_penalty = 0.25
    gpudirect = true

    [device]                     # a preset name (device = "a100") also works
    base = "a100"
    hbm_bw = 1300e9

    [cpu_rates]
    parse_rate = 8e4

    [gpu_model]
    exchange_overhead_s = 1.0

JSON files use the same structure.  Every malformed input — unreadable
file, syntax error, unknown key, wrong type, failed spec validation —
raises a single :class:`ValueError` naming the file and the offending
field, so CLI users get one actionable line instead of a traceback chain.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from .device import DeviceSpec, get_device
from .network import NetworkSpec
from .rates import CpuRates, GpuPipelineModel
from .registry import get_machine
from .spec import MachineSpec

__all__ = ["load", "spec_from_dict"]

_NODE_KEYS = ("sockets_per_node", "cores_per_node", "gpus_per_node", "ranks_per_node")
#: Flat [network] keys, mirrored between MachineSpec and NetworkSpec.
_NETWORK_FLAT_KEYS = ("injection_bw", "intra_node_bw", "latency", "alltoallv_efficiency")
#: Hierarchical [network] keys — NetworkSpec-only (see repro.machines.network).
_NETWORK_HIER_KEYS = (
    "intra_socket_bw",
    "switch_levels",
    "switch_radix",
    "switch_uplink_bw",
    "eager_threshold",
    "rendezvous_latency",
    "incast_penalty",
    "gpudirect",
)
_NETWORK_KEYS = _NETWORK_FLAT_KEYS + ("placement",) + _NETWORK_HIER_KEYS
_NETWORK_INT_KEYS = ("switch_levels", "switch_radix", "eager_threshold")
_TOP_KEYS = (
    "name",
    "description",
    "base",
    "node_cost",
    "node",
    "network",
    "device",
    "cpu_rates",
    "gpu_model",
)


def _err(source: str, message: str) -> ValueError:
    return ValueError(f"machine calibration {source}: {message}")


def _check_keys(source: str, section: str, data: dict, allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise _err(
            source,
            f"unknown key(s) {', '.join(unknown)} in {section}; allowed: {', '.join(allowed)}",
        )


def _check_table(source: str, section: str, value: object) -> dict:
    if not isinstance(value, dict):
        raise _err(source, f"section '{section}' must be a table/object, got {type(value).__name__}")
    return value


def _numeric_overrides(source: str, section: str, data: dict, proto: object) -> dict:
    """Validate a field-override table against a dataclass prototype."""
    known = {f.name for f in fields(proto)}  # type: ignore[arg-type]
    _check_keys(source, section, data, tuple(sorted(known - {"name"})))
    for key, value in data.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            if not (section == "network" and key == "placement" and isinstance(value, str)):
                raise _err(source, f"{section}.{key} must be a number, got {value!r}")
    return data


def _build_device(source: str, value: object, base_device: DeviceSpec | None) -> DeviceSpec:
    if isinstance(value, str):
        try:
            return get_device(value)
        except ValueError as exc:
            raise _err(source, str(exc)) from None
    table = dict(_check_table(source, "device", value))
    start = base_device
    if "base" in table:
        base_name = table.pop("base")
        if not isinstance(base_name, str):
            raise _err(source, f"device.base must be a device preset name, got {base_name!r}")
        try:
            start = get_device(base_name)
        except ValueError as exc:
            raise _err(source, str(exc)) from None
    try:
        if start is not None:
            allowed = tuple(sorted(f.name for f in fields(DeviceSpec)))
            _check_keys(source, "device", table, allowed)
            return start.with_overrides(**table)
        return DeviceSpec(**table)
    except (TypeError, ValueError) as exc:
        raise _err(source, f"invalid device spec: {exc}") from None


def spec_from_dict(data: dict, *, source: str = "<dict>") -> MachineSpec:
    """Build a validated :class:`MachineSpec` from parsed calibration data."""
    data = _check_table(source, "top level", data)
    _check_keys(source, "the top level", data, _TOP_KEYS)

    base: MachineSpec | None = None
    if "base" in data:
        if not isinstance(data["base"], str):
            raise _err(source, f"'base' must be a machine preset name, got {data['base']!r}")
        try:
            base = get_machine(data["base"])
        except ValueError as exc:
            raise _err(source, str(exc)) from None

    kwargs: dict[str, object] = {}
    if base is not None:
        kwargs = {f.name: getattr(base, f.name) for f in fields(MachineSpec)}
    elif "name" not in data:
        raise _err(source, "missing required key 'name' (and no 'base' preset to inherit one)")
    for key in ("name", "description"):
        if key in data:
            if not isinstance(data[key], str):
                raise _err(source, f"'{key}' must be a string, got {data[key]!r}")
            kwargs[key] = data[key]

    node = _check_table(source, "node", data.get("node", {}))
    _check_keys(source, "[node]", node, _NODE_KEYS)
    for key, value in node.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise _err(source, f"node.{key} must be an integer, got {value!r}")
        kwargs[key] = value

    if "node_cost" in data:
        cost = data["node_cost"]
        if isinstance(cost, bool) or not isinstance(cost, (int, float)):
            raise _err(source, f"node_cost must be a number, got {cost!r}")
        kwargs["node_cost"] = cost

    network = _check_table(source, "network", data.get("network", {}))
    _check_keys(source, "[network]", network, _NETWORK_KEYS)
    net_overrides: dict[str, object] = {}
    for key, value in network.items():
        if key == "placement":
            if not isinstance(value, str):
                raise _err(source, f"network.placement must be a string, got {value!r}")
            kwargs[key] = value
            continue
        if key == "gpudirect":
            if not isinstance(value, bool):
                raise _err(source, f"network.gpudirect must be a boolean, got {value!r}")
        elif key == "switch_uplink_bw":
            if not isinstance(value, (list, tuple)) or any(
                isinstance(v, bool) or not isinstance(v, (int, float)) for v in value
            ):
                raise _err(source, f"network.switch_uplink_bw must be a list of numbers, got {value!r}")
            value = tuple(value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _err(source, f"network.{key} must be a number, got {value!r}")
        elif key in _NETWORK_INT_KEYS and not isinstance(value, int):
            raise _err(source, f"network.{key} must be an integer, got {value!r}")
        net_overrides[key] = value
        if key in _NETWORK_FLAT_KEYS:
            kwargs[key] = value

    # A machine gets a full NetworkSpec when the file uses hierarchical
    # keys or the base preset already carries one; flat-only files on
    # flat bases keep network = None (the degenerate single-level form).
    hier = {k: v for k, v in net_overrides.items() if k in _NETWORK_HIER_KEYS}
    base_network: NetworkSpec | None = kwargs.get("network")  # type: ignore[assignment]
    if hier or base_network is not None:
        if base_network is not None:
            start = base_network
        elif base is not None:
            start = base.resolved_network
        else:
            start = NetworkSpec()
        try:
            kwargs["network"] = start.with_overrides(**net_overrides)
        except ValueError as exc:
            raise _err(source, f"invalid network spec: {exc}") from None

    if "device" in data:
        kwargs["device"] = _build_device(source, data["device"], base.device if base else None)

    if "cpu_rates" in data:
        table = _check_table(source, "cpu_rates", data["cpu_rates"])
        _numeric_overrides(source, "cpu_rates", table, CpuRates)
        start = base.cpu_rates if base else CpuRates()
        try:
            kwargs["cpu_rates"] = start.with_overrides(**table)
        except ValueError as exc:
            raise _err(source, f"invalid cpu_rates: {exc}") from None

    if "gpu_model" in data:
        table = _check_table(source, "gpu_model", data["gpu_model"])
        _numeric_overrides(source, "gpu_model", table, GpuPipelineModel)
        start = base.gpu_model if base else GpuPipelineModel()
        try:
            kwargs["gpu_model"] = start.with_overrides(**table)
        except ValueError as exc:
            raise _err(source, f"invalid gpu_model: {exc}") from None

    try:
        return MachineSpec(**kwargs)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise _err(source, str(exc)) from None


def load(path: str | Path) -> MachineSpec:
    """Load a machine calibration file (``.toml`` or ``.json``)."""
    path = Path(path)
    source = str(path)
    if not path.exists():
        raise _err(source, "file not found")
    suffix = path.suffix.lower()
    try:
        if suffix == ".toml":
            import tomllib

            data = tomllib.loads(path.read_text())
        elif suffix == ".json":
            data = json.loads(path.read_text())
        else:
            raise _err(source, f"unsupported calibration format {suffix!r}; use .toml or .json")
    except ValueError as exc:  # includes tomllib.TOMLDecodeError and json.JSONDecodeError
        if isinstance(exc.args[0] if exc.args else "", str) and str(exc).startswith("machine calibration"):
            raise
        raise _err(source, f"parse error: {exc}") from None
    except OSError as exc:
        raise _err(source, f"cannot read file: {exc}") from None
    return spec_from_dict(data, source=source)
