"""Tests for cluster topology and the communication cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.costmodel import CommCostModel
from repro.mpi.topology import ClusterSpec, summit_cpu, summit_gpu


class TestClusterSpec:
    def test_summit_layouts(self):
        g = summit_gpu(16)
        assert g.n_ranks == 96 and g.ranks_per_node == 6
        c = summit_cpu(16)
        assert c.n_ranks == 672 and c.ranks_per_node == 42

    def test_node_of(self):
        c = summit_gpu(4)
        assert c.node_of(0) == 0
        assert c.node_of(5) == 0
        assert c.node_of(6) == 1
        assert c.node_of(23) == 3
        with pytest.raises(ValueError):
            c.node_of(24)

    def test_node_map(self):
        c = summit_gpu(2)
        assert c.node_map().tolist() == [0] * 6 + [1] * 6

    def test_with_nodes(self):
        c = summit_gpu(4).with_nodes(32)
        assert c.n_nodes == 32 and c.ranks_per_node == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", n_nodes=0, ranks_per_node=1)
        with pytest.raises(ValueError):
            ClusterSpec(name="x", n_nodes=1, ranks_per_node=1, injection_bw=-1)
        with pytest.raises(ValueError):
            ClusterSpec(name="x", n_nodes=1, ranks_per_node=1, alltoallv_efficiency=0)

    def test_summit_constants(self):
        # Section V-A published numbers.
        assert summit_gpu(1).injection_bw == 23e9

    def test_round_robin_placement(self):
        import dataclasses

        c = dataclasses.replace(summit_gpu(4), placement="round-robin")
        assert c.node_of(0) == 0
        assert c.node_of(1) == 1
        assert c.node_of(4) == 0  # wraps across 4 nodes
        counts = np.bincount(c.node_map(), minlength=4)
        assert (counts == 6).all()

    def test_invalid_placement(self):
        import dataclasses

        with pytest.raises(ValueError, match="placement"):
            dataclasses.replace(summit_gpu(2), placement="random")

    def test_placement_changes_aggregation(self):
        """A rank-contiguous hot stripe aggregates onto one node under
        block placement but spreads under round-robin."""
        import dataclasses

        block = summit_gpu(4)
        rr = dataclasses.replace(block, placement="round-robin")
        p = block.n_ranks
        mat = np.zeros((p, p))
        mat[:, :6] = 1e8  # all traffic to ranks 0-5 (one full node if block)
        t_block = CommCostModel(block).alltoallv(mat).total
        t_rr = CommCostModel(rr).alltoallv(mat).total
        assert t_rr < t_block


class TestCommCostModel:
    def make(self, nodes=4):
        return CommCostModel(summit_gpu(nodes))

    def uniform_matrix(self, cluster, per_pair):
        p = cluster.n_ranks
        return np.full((p, p), per_pair, dtype=np.float64)

    def test_more_bytes_more_time(self):
        cm = self.make()
        small = cm.alltoallv(self.uniform_matrix(cm.cluster, 1e4)).total
        large = cm.alltoallv(self.uniform_matrix(cm.cluster, 1e6)).total
        assert large > small

    def test_latency_floor(self):
        """An empty exchange still pays per-round latency; under the auto
        schedule the Bruck algorithm's log2(P) rounds set the floor."""
        cm = self.make()
        p = cm.cluster.n_ranks
        zero = cm.alltoallv(np.zeros((p, p))).total
        assert zero == pytest.approx(cm.cluster.latency * np.ceil(np.log2(p)))
        pairwise = cm.alltoallv(np.zeros((p, p)), schedule="pairwise").total
        assert pairwise == pytest.approx(cm.cluster.latency * (p - 1))

    def test_schedule_selection_by_size(self):
        """Auto picks Bruck for tiny payloads, pairwise for large ones."""
        cm = self.make()
        p = cm.cluster.n_ranks
        tiny = cm.alltoallv(np.full((p, p), 8.0))
        huge = cm.alltoallv(np.full((p, p), 1e7))
        assert tiny.schedule == "bruck"
        assert huge.schedule == "pairwise"

    def test_explicit_schedule_honoured(self):
        cm = self.make()
        p = cm.cluster.n_ranks
        mat = np.full((p, p), 1e7)
        bruck = cm.alltoallv(mat, schedule="bruck")
        pairwise = cm.alltoallv(mat, schedule="pairwise")
        assert bruck.schedule == "bruck"
        # Store-and-forward retransmission makes Bruck slower for big data.
        assert bruck.total > pairwise.total

    def test_unknown_schedule(self):
        cm = self.make()
        with pytest.raises(ValueError, match="schedule"):
            cm.alltoallv(np.zeros((cm.cluster.n_ranks, cm.cluster.n_ranks)), schedule="magic")

    def test_skew_penalized(self):
        """A matrix concentrating traffic on one node finishes later than a
        uniform one with the same total volume (bulk-sync max semantics)."""
        cm = self.make()
        p = cm.cluster.n_ranks
        total = 1e9
        uniform = np.full((p, p), total / (p * p))
        skewed = np.zeros((p, p))
        skewed[:, 0] = total / p  # everything converges on rank 0's node
        assert cm.alltoallv(skewed).total > cm.alltoallv(uniform).total

    def test_bottleneck_node_identified(self):
        cm = self.make()
        p = cm.cluster.n_ranks
        mat = np.zeros((p, p))
        hot_rank = 13  # node 2
        mat[:, hot_rank] = 1e8
        timing = cm.alltoallv(mat)
        assert timing.bottleneck_node == cm.cluster.node_of(hot_rank)

    def test_rank_local_traffic_is_free_of_network(self):
        cm = self.make()
        p = cm.cluster.n_ranks
        diag = np.diag(np.full(p, 1e9))
        t = cm.alltoallv(diag)
        assert t.inter_node_time == 0.0
        assert t.intra_node_time == 0.0  # rank-local, not even intra-node

    def test_intra_node_cheaper_than_inter(self):
        cm = self.make(nodes=2)
        p = cm.cluster.n_ranks
        intra = np.zeros((p, p))
        intra[0, 1] = 1e9  # same node
        inter = np.zeros((p, p))
        inter[0, 6] = 1e9  # across nodes
        assert cm.alltoallv(intra).total < cm.alltoallv(inter).total

    def test_efficiency_derates_bandwidth(self):
        fast = CommCostModel(summit_gpu(4))
        slow_cluster = ClusterSpec(name="slow", n_nodes=4, ranks_per_node=6, alltoallv_efficiency=0.01)
        slow = CommCostModel(slow_cluster)
        mat = self.uniform_matrix(fast.cluster, 1e6)
        assert slow.alltoallv(mat).inter_node_time > fast.alltoallv(mat).inter_node_time

    def test_wrong_shape_rejected(self):
        cm = self.make()
        with pytest.raises(ValueError):
            cm.alltoallv(np.zeros((3, 3)))

    def test_counts_exchange_latency_bound(self):
        cm = self.make()
        t = cm.alltoall_counts()
        # At least the Bruck round latency, at most the pairwise form.
        p = cm.cluster.n_ranks
        assert t >= cm.cluster.latency * np.ceil(np.log2(p))
        assert t <= cm.cluster.latency * (p - 1) + 1.0

    def test_allreduce_log_rounds(self):
        cm = self.make()
        t1 = cm.allreduce(8)
        cm2 = CommCostModel(summit_gpu(64))
        t2 = cm2.allreduce(8)
        assert t2 > t1  # more ranks -> more rounds

    def test_exchange_time_includes_counts(self):
        cm = self.make()
        mat = self.uniform_matrix(cm.cluster, 1e5)
        assert cm.exchange_time(mat) > cm.alltoallv(mat).total

    def test_volume_scaling_linear_in_bandwidth_regime(self):
        """Doubling volume roughly doubles the bandwidth term."""
        cm = self.make()
        m1 = self.uniform_matrix(cm.cluster, 1e7)
        t1 = cm.alltoallv(m1).inter_node_time
        t2 = cm.alltoallv(2 * m1).inter_node_time
        assert t2 == pytest.approx(2 * t1, rel=1e-9)
