"""Minimal FASTA/FASTQ I/O.

The pipelines consume reads as Python strings or storage-code arrays; this
module provides the file layer so the examples and dataset registry can
round-trip real FASTQ files (the paper's inputs are FASTQ, Table I).
Gzip-compressed files are handled transparently by extension.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["SequenceRecord", "read_fastq", "write_fastq", "read_fasta", "write_fasta", "sniff_format"]


@dataclass(frozen=True)
class SequenceRecord:
    """One sequencing read: identifier, bases, and optional quality string."""

    name: str
    sequence: str
    quality: str | None = None

    def __post_init__(self) -> None:
        if self.quality is not None and len(self.quality) != len(self.sequence):
            raise ValueError(
                f"quality length {len(self.quality)} != sequence length {len(self.sequence)} for read {self.name!r}"
            )

    def __len__(self) -> int:
        return len(self.sequence)


def _open_text(path: str | Path, mode: str) -> io.TextIOBase:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)  # noqa: SIM115 - caller closes via context manager


def read_fastq(path: str | Path) -> Iterator[SequenceRecord]:
    """Stream records from a FASTQ file (optionally .gz).

    Validates the 4-line record structure and the ``+`` separator; raises
    ``ValueError`` with the offending line number on malformed input.
    """
    with _open_text(path, "r") as fh:
        lineno = 0
        while True:
            header = fh.readline()
            if not header:
                return
            lineno += 1
            header = header.rstrip("\n")
            if not header.startswith("@"):
                raise ValueError(f"{path}:{lineno}: expected '@' header, got {header[:30]!r}")
            seq = fh.readline().rstrip("\n")
            sep = fh.readline().rstrip("\n")
            qual = fh.readline().rstrip("\n")
            lineno += 3
            if not sep.startswith("+"):
                raise ValueError(f"{path}:{lineno - 1}: expected '+' separator, got {sep[:30]!r}")
            if len(qual) != len(seq):
                raise ValueError(f"{path}:{lineno}: quality/sequence length mismatch")
            yield SequenceRecord(name=header[1:], sequence=seq, quality=qual)


def write_fastq(path: str | Path, records: Iterable[SequenceRecord]) -> int:
    """Write records to a FASTQ file (optionally .gz); returns record count.

    Records lacking quality strings get a constant placeholder quality
    (``I`` == Q40), which is what read simulators conventionally emit.
    """
    count = 0
    with _open_text(path, "w") as fh:
        for rec in records:
            qual = rec.quality if rec.quality is not None else "I" * len(rec.sequence)
            fh.write(f"@{rec.name}\n{rec.sequence}\n+\n{qual}\n")
            count += 1
    return count


def read_fasta(path: str | Path) -> Iterator[SequenceRecord]:
    """Stream records from a FASTA file (optionally .gz); joins wrapped lines."""
    name: str | None = None
    chunks: list[str] = []
    with _open_text(path, "r") as fh:
        for raw in fh:
            line = raw.rstrip("\n")
            if line.startswith(">"):
                if name is not None:
                    yield SequenceRecord(name=name, sequence="".join(chunks))
                name = line[1:]
                chunks = []
            elif line:
                if name is None:
                    raise ValueError(f"{path}: sequence data before first '>' header")
                chunks.append(line)
    if name is not None:
        yield SequenceRecord(name=name, sequence="".join(chunks))


def write_fasta(path: str | Path, records: Iterable[SequenceRecord], width: int = 80) -> int:
    """Write records to a FASTA file with line wrapping; returns record count."""
    if width < 1:
        raise ValueError("width must be positive")
    count = 0
    with _open_text(path, "w") as fh:
        for rec in records:
            fh.write(f">{rec.name}\n")
            seq = rec.sequence
            for i in range(0, len(seq), width):
                fh.write(seq[i : i + width] + "\n")
            count += 1
    return count


def sniff_format(path: str | Path) -> str:
    """Return ``"fastq"`` or ``"fasta"`` by peeking at the first byte."""
    with _open_text(path, "r") as fh:
        first = fh.read(1)
    if first == "@":
        return "fastq"
    if first == ">":
        return "fasta"
    raise ValueError(f"{path}: neither FASTQ nor FASTA (first byte {first!r})")
