"""Tests for quality decoding, trimming, and filtering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.fastq import SequenceRecord
from repro.dna.quality import (
    QualityFilter,
    decode_phred,
    mean_error_probability,
    trim_ends,
    trim_sliding_window,
)


def rec(seq: str, qual: str) -> SequenceRecord:
    return SequenceRecord(name="r", sequence=seq, quality=qual)


class TestPhred:
    def test_decode_known(self):
        assert decode_phred("!").tolist() == [0]
        assert decode_phred("I").tolist() == [40]
        assert decode_phred("!5I").tolist() == [0, 20, 40]

    def test_below_range_rejected(self):
        with pytest.raises(ValueError):
            decode_phred("\x20")  # space = -1

    def test_mean_error_probability(self):
        # Q20 -> 1%, Q40 -> 0.01%.
        assert mean_error_probability("5") == pytest.approx(0.01)
        assert mean_error_probability("I") == pytest.approx(1e-4)
        assert mean_error_probability("5I") == pytest.approx((0.01 + 1e-4) / 2)

    def test_empty(self):
        assert mean_error_probability("") == 0.0

    @given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=74), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_decode_range(self, qual):
        scores = decode_phred(qual)
        assert (scores >= 0).all() and (scores <= 41).all()


class TestTrimEnds:
    def test_trims_both_ends(self):
        r = trim_ends(rec("AACGTT", "!!II!!"), min_quality=10)
        assert r.sequence == "CG" and r.quality == "II"

    def test_all_bad(self):
        r = trim_ends(rec("ACGT", "!!!!"), min_quality=10)
        assert r.sequence == ""

    def test_all_good(self):
        r = trim_ends(rec("ACGT", "IIII"), min_quality=10)
        assert r.sequence == "ACGT"

    def test_no_quality_passthrough(self):
        r = SequenceRecord(name="r", sequence="ACGT")
        assert trim_ends(r) is r


class TestSlidingWindow:
    def test_cuts_at_quality_drop(self):
        # 10 good bases then 10 terrible ones, window 5.
        r = rec("A" * 20, "I" * 10 + "!" * 10)
        out = trim_sliding_window(r, window=5, min_mean_quality=15)
        assert 6 <= len(out) <= 10
        assert out.sequence == "A" * len(out)

    def test_keeps_clean_read(self):
        r = rec("ACGT" * 10, "I" * 40)
        assert trim_sliding_window(r).sequence == r.sequence

    def test_short_read_untouched(self):
        r = rec("ACG", "III")
        assert trim_sliding_window(r, window=10) is r

    def test_window_validation(self):
        with pytest.raises(ValueError):
            trim_sliding_window(rec("ACGT", "IIII"), window=0)


class TestQualityFilter:
    def test_length_filter(self):
        f = QualityFilter(min_length=5, min_mean_quality=0)
        assert f.process(rec("ACGT", "IIII")) is None
        assert f.process(rec("ACGTA", "IIIII")) is not None

    def test_quality_filter(self):
        f = QualityFilter(min_length=1, min_mean_quality=20)
        assert f.process(rec("ACGT", "!!!!")) is None
        assert f.process(rec("ACGT", "IIII")) is not None

    def test_trim_then_filter(self):
        f = QualityFilter(min_length=4, min_mean_quality=0, trim_end_quality=10)
        # 6 bases but only 2 survive trimming -> rejected.
        assert f.process(rec("AACGTT", "!!II!!")) is None

    def test_apply_stream(self):
        f = QualityFilter(min_length=3, min_mean_quality=0)
        records = [rec("ACGT", "IIII"), rec("AC", "II"), rec("GGG", "III")]
        out = list(f.apply(records))
        assert [r.sequence for r in out] == ["ACGT", "GGG"]

    def test_filtering_cleans_spectrum(self):
        """Dropping low-quality reads lowers the singleton (error) mass."""
        from repro.dna.reads import ReadSet
        from repro.dna.simulate import GenomeSimulator, ReadLengthProfile, ReadSimulator
        from repro.dna.simulate import reads_to_records
        from repro.kmers.spectrum import count_kmers_exact

        genome = GenomeSimulator(15_000, seed=3).generate_codes()
        clean = ReadSimulator(
            genome, coverage=6, length_profile=ReadLengthProfile.short_read(200), error_rate=0.0, seed=4
        ).generate()
        noisy = ReadSimulator(
            genome, coverage=6, length_profile=ReadLengthProfile.short_read(200), error_rate=0.05, seed=5
        ).generate()
        # Tag reads with qualities reflecting their true error rates.
        records = [
            SequenceRecord(r.name, r.sequence, "I" * len(r.sequence))
            for r in reads_to_records(clean, prefix="clean")
        ] + [
            SequenceRecord(r.name, r.sequence, "%" * len(r.sequence))  # Q4
            for r in reads_to_records(noisy, prefix="noisy")
        ]
        f = QualityFilter(min_length=50, min_mean_quality=10)
        kept = ReadSet.from_records(f.apply(records))
        all_reads = ReadSet.from_records(records)
        sp_kept = count_kmers_exact(kept, 17)
        sp_all = count_kmers_exact(all_reads, 17)
        assert sp_kept.singleton_fraction() < sp_all.singleton_fraction()

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityFilter(min_length=-1)
