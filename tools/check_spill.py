#!/usr/bin/env python3
"""Out-of-core smoke test: count under hard memory caps.

Three capped probes, each a (pass, expected-OOM) pair of child processes
so one run's allocations can never pollute another's.  For every probe
the parent first computes the *uncapped in-memory* reference digest
(spectrum bytes + every deterministic model observable + the
model-metric telemetry snapshot); each passing child must reproduce it
bit for bit.

1. **Staged spill** (``RLIMIT_AS``, k-mer mode): the staged loop with
   ``spill_dir`` must fit and match under a cap that exhausts the
   in-memory staged path.  K-mer mode on purpose: 8 wire bytes per
   instance make the exchange + count working set (not parse
   intermediates) the hot spot, which is what spilling relieves.
2. **Blocked fused×spill** (``RLIMIT_AS``, supermer mode): ``fused=True``
   + ``spill_dir`` must fit and match under a cap that exhausts the
   in-memory fused path.  Supermer mode on purpose: the fused parse
   holds compact packed supermers, so the memory hot spot is the
   exchanged receive buffer and the unpacked k-mer stream — exactly
   what the rank-blocked streaming bounds.  (In k-mer mode the fused
   parse itself holds the whole flat k-mer array, which no exchange
   spill can relieve, so no cap separates the two paths.)
3. **Mmap-backed table** (``RLIMIT_DATA``, supermer mode, low-coverage
   large genome so the *table* dominates): ``table_dir`` must fit and
   match under a cap that exhausts the resident-table twin.  RLIMIT_AS
   cannot tell the two backings apart — it counts file-backed mappings
   too — but RLIMIT_DATA (Linux >= 4.7) counts brk plus *anonymous
   private* mappings only, which is exactly the resident footprint: the
   ``np.memmap`` slabs escape the cap, resident table arrays do not.

Expected-OOM twins that squeeze through anyway are reported as warnings,
not failures: the identity + spool assertions on the passing side are
the contract.  Cap defaults were calibrated empirically against the
default workloads (pass/OOM thresholds bracketed to >= ~20 MB margins).

Usage: ``python tools/check_spill.py [--cap-mb N] [--fused-cap-mb N]
[--data-cap-mb N] [--genome N] [--coverage X]``.  Exits 0 when every
capped run matches its reference, 1 otherwise.
"""

from __future__ import annotations

import argparse
import errno
import hashlib
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def _build_reads(genome: int, coverage: float):
    from repro.dna.simulate import simulate_dataset

    return simulate_dataset(genome_length=genome, coverage=coverage, repeat_fraction=0.1, seed=42)


def _config(mode: str):
    from repro.core.config import PipelineConfig

    if mode == "kmer":
        return PipelineConfig(k=21, mode="kmer", canonical=True)
    return PipelineConfig(k=21, mode="supermer", canonical=True, minimizer_len=9, window=12)


def _run(reads, config, *, spill_dir=None, host_memory_budget=None, fused=False, table_dir=None):
    from repro.core.engine import EngineOptions, run_pipeline
    from repro.mpi.topology import summit_gpu
    from repro.telemetry import MetricRegistry

    reg = MetricRegistry()
    result = run_pipeline(
        reads,
        summit_gpu(2),
        config,
        backend="gpu",
        options=EngineOptions(
            telemetry=reg,
            spill_dir=spill_dir,
            host_memory_budget=host_memory_budget,
            fused=fused,
            table_dir=table_dir,
        ),
    )
    return result, reg


def _digest(result, reg) -> str:
    """One hash over every deterministic observable of a run."""
    ins = result.insert_stats
    h = hashlib.sha256()
    h.update(result.spectrum.values.tobytes())
    h.update(result.spectrum.counts.tobytes())
    h.update(
        json.dumps(
            {
                "timing": [result.timing.parse, result.timing.exchange, result.timing.count],
                "received": [int(x) for x in result.received_kmers],
                "exchanged_items": int(result.exchanged_items),
                "counts_matrix": result.counts_matrix.tolist(),
                "insert": [
                    ins.n_instances,
                    ins.n_distinct,
                    ins.total_probes,
                    ins.max_probe,
                    ins.cas_conflicts,
                    ins.rounds,
                    ins.resizes,
                ],
                "rounds": int(result.n_rounds_used),
                "alltoallv_s": result.alltoallv_seconds,
                "staging_s": result.staging_seconds,
                "snapshot": reg.snapshot(include_wall=False),
            },
            sort_keys=True,
            default=str,
        ).encode()
    )
    return h.hexdigest()


def _vm_field(field: str) -> int:
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith(field):
                return int(line.split()[1]) * 1024
    raise RuntimeError(f"{field} not found in /proc/self/status")


def _apply_as_cap(cap_mb: int) -> int:
    import resource

    cap = _vm_field("VmSize:") + cap_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    return cap


def _apply_data_cap(cap_mb: int) -> int:
    """Cap brk + anonymous private mappings (Linux >= 4.7 semantics)."""
    import resource

    cap = _vm_field("VmData:") + cap_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))
    return cap


# Child modes: probe group, cap kind/knob, and engine options.
CHILD_MODES = {
    "spill": dict(group="staged", cap="as", cap_arg="cap_mb", fused=False, spill=True, mmap=False),
    "memory": dict(group="staged", cap="as", cap_arg="cap_mb", fused=False, spill=False, mmap=False),
    "fused-spill": dict(
        group="fused", cap="as", cap_arg="fused_cap_mb", fused=True, spill=True, mmap=False
    ),
    "fused-memory": dict(
        group="fused", cap="as", cap_arg="fused_cap_mb", fused=True, spill=False, mmap=False
    ),
    "table-mmap": dict(
        group="table", cap="data", cap_arg="data_cap_mb", fused=True, spill=True, mmap=True
    ),
    "table": dict(
        group="table", cap="data", cap_arg="data_cap_mb", fused=True, spill=True, mmap=False
    ),
}

# Workload per probe group: (config mode, genome attr, coverage attr).
GROUP_WORKLOADS = {
    "staged": ("kmer", "genome", "coverage"),
    "fused": ("supermer", "genome", "coverage"),
    "table": ("supermer", "table_genome", "table_coverage"),
}


def _group_case(group: str, args):
    mode, genome_attr, coverage_attr = GROUP_WORKLOADS[group]
    return _config(mode), getattr(args, genome_attr), getattr(args, coverage_attr)


def _child(args) -> int:
    spec = CHILD_MODES[args.child]
    cap_mb = getattr(args, spec["cap_arg"])
    cap = _apply_as_cap(cap_mb) if spec["cap"] == "as" else _apply_data_cap(cap_mb)
    config, genome, coverage = _group_case(spec["group"], args)
    reads = _build_reads(genome, coverage)
    budget = args.budget_mb * 1024 * 1024
    try:
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            kwargs = dict(host_memory_budget=budget, fused=spec["fused"])
            if spec["spill"]:
                kwargs["spill_dir"] = scratch / "spool"
            if spec["mmap"]:
                kwargs["table_dir"] = scratch / "table"
            result, reg = _run(reads, config, **kwargs)
            spilled_bytes = reg.total("spill_bytes_written_total") if spec["spill"] else 0.0
    except MemoryError:
        print(json.dumps({"status": "oom", "cap": cap}))
        return 3
    except OSError as exc:
        if exc.errno != errno.ENOMEM:
            raise
        # mmap raises OSError(ENOMEM), not MemoryError, at the rlimit wall.
        print(json.dumps({"status": "oom", "cap": cap}))
        return 3
    print(
        json.dumps(
            {
                "status": "ok",
                "digest": _digest(result, reg),
                "spill_bytes_written": spilled_bytes,
                "n_rounds": int(result.n_rounds_used),
                "cap": cap,
            }
        )
    )
    return 0


def _spawn(mode: str, args) -> dict:
    cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--child",
        mode,
        "--cap-mb",
        str(args.cap_mb),
        "--fused-cap-mb",
        str(args.fused_cap_mb),
        "--data-cap-mb",
        str(args.data_cap_mb),
        "--budget-mb",
        str(args.budget_mb),
        "--genome",
        str(args.genome),
        "--coverage",
        str(args.coverage),
        "--table-genome",
        str(args.table_genome),
        "--table-coverage",
        str(args.table_coverage),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    payload = None
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            payload = json.loads(line)
    if payload is None:
        payload = {"status": f"crashed (rc={proc.returncode})", "stderr": proc.stderr[-2000:]}
    payload["returncode"] = proc.returncode
    return payload


def _reference(group: str, args) -> str:
    """Uncapped in-memory digest for one probe group's workload."""
    config, genome, coverage = _group_case(group, args)
    reads = _build_reads(genome, coverage)
    # Same host_memory_budget as the children: the budget sets the round
    # count, which is a deterministic observable — only the execution
    # strategy may vary.
    result, reg = _run(reads, config, host_memory_budget=args.budget_mb * 1024 * 1024)
    return _digest(result, reg)


def _check_pass(name: str, payload: dict, ref: str) -> bool:
    if payload.get("status") != "ok":
        print(f"FAIL: {name} run did not complete under the cap: {payload}")
        return False
    if payload["digest"] != ref:
        print(f"FAIL: {name} digest {payload['digest'][:16]} != reference {ref[:16]}")
        return False
    if payload["spill_bytes_written"] <= 0:
        print(f"FAIL: {name} path engaged but wrote no bytes to the spool")
        return False
    print(
        f"  ok: bit-identical to reference; "
        f"{payload['spill_bytes_written'] / 1e6:.1f} MB spooled over {payload['n_rounds']} round(s)"
    )
    return True


def _check_oom(name: str, payload: dict) -> None:
    if payload.get("status") == "ok":
        print(f"  warning: {name} also fit under the cap (identity still verified)")
    else:
        print(f"  ok: {name} failed under the cap as expected ({payload['status']})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cap-mb", type=int, default=400, help="RLIMIT_AS headroom for the staged-spill probe"
    )
    parser.add_argument(
        "--fused-cap-mb",
        type=int,
        default=570,
        help="RLIMIT_AS headroom for the fused x spill probe",
    )
    parser.add_argument(
        "--data-cap-mb",
        type=int,
        default=540,
        help="RLIMIT_DATA headroom for the mmap-table probe (anonymous memory only)",
    )
    parser.add_argument("--budget-mb", type=int, default=24, help="host_memory_budget for every run")
    parser.add_argument("--genome", type=int, default=1_500_000)
    parser.add_argument("--coverage", type=float, default=8.0)
    parser.add_argument(
        "--table-genome",
        type=int,
        default=4_000_000,
        help="genome for the table probe (large: distinct k-mers make the table the hot spot)",
    )
    parser.add_argument("--table-coverage", type=float, default=3.0)
    parser.add_argument("--child", choices=sorted(CHILD_MODES), default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child:
        return _child(args)

    print(f"staged probe: genome={args.genome} coverage={args.coverage} kmer (uncapped reference)")
    ref = _reference("staged", args)
    print(f"  staged spill under RLIMIT_AS baseline+{args.cap_mb} MB ...")
    if not _check_pass("spilled", _spawn("spill", args), ref):
        return 1
    print("  in-memory twin under the same cap (expected to exhaust memory) ...")
    _check_oom("in-memory staged", _spawn("memory", args))

    print(f"fused probe: genome={args.genome} coverage={args.coverage} supermer (uncapped reference)")
    ref = _reference("fused", args)
    print(f"  fused x spill under RLIMIT_AS baseline+{args.fused_cap_mb} MB ...")
    if not _check_pass("fused-spill", _spawn("fused-spill", args), ref):
        return 1
    print("  in-memory fused twin under the same cap (expected to exhaust memory) ...")
    _check_oom("in-memory fused", _spawn("fused-memory", args))

    print(
        f"table probe: genome={args.table_genome} coverage={args.table_coverage} supermer "
        "(uncapped reference)"
    )
    ref = _reference("table", args)
    print(f"  mmap-table fused x spill under RLIMIT_DATA baseline+{args.data_cap_mb} MB ...")
    if not _check_pass("table-mmap", _spawn("table-mmap", args), ref):
        return 1
    print("  resident-table twin under the same data cap (expected to exhaust memory) ...")
    _check_oom("resident-table fused x spill", _spawn("table", args))

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
