"""Threaded SPMD communicator: real per-rank MPI-style semantics.

The deterministic BSP engine (:mod:`repro.mpi.collectives`) is what the
benchmarks run on; this module provides the *other* execution engine — one
OS thread per rank, each running the same program with an mpi4py-like
per-rank :class:`Comm` handle.  It exists for two reasons:

* it validates the BSP collectives against genuinely concurrent rank
  programs (if the two engines disagree, the simulation is wrong);
* it lets users write ordinary SPMD code (``comm.rank``, ``comm.alltoallv``,
  ``comm.send``/``comm.recv``) against the library, as they would against
  real MPI.

Collectives synchronize on barriers; point-to-point uses per-(dst, src, tag)
queues.  Exceptions in any rank cancel the world and re-raise in the caller.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

__all__ = ["Comm", "ThreadedWorld", "run_spmd"]

_SENTINEL_TAG = 0


class _WorldState:
    """Shared state of one threaded world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[list[Any]] = [[None] * size for _ in range(size)]  # [dst][src]
        self.reduce_buf: list[Any] = [None] * size
        self.queues: dict[tuple[int, int, int], queue.Queue] = {}
        self.queues_lock = threading.Lock()
        self.failure: BaseException | None = None
        self.failure_lock = threading.Lock()

    def queue_for(self, dst: int, src: int, tag: int) -> queue.Queue:
        key = (dst, src, tag)
        with self.queues_lock:
            q = self.queues.get(key)
            if q is None:
                q = self.queues[key] = queue.Queue()
            return q

    def fail(self, exc: BaseException) -> None:
        with self.failure_lock:
            if self.failure is None:
                self.failure = exc
        self.barrier.abort()


class Comm:
    """Per-rank communicator handle (the mpi4py-flavoured API)."""

    def __init__(self, world: _WorldState, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- synchronization -----------------------------------------------------

    def barrier(self) -> None:
        self._world.barrier.wait()

    # -- point to point --------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = _SENTINEL_TAG) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        self._world.queue_for(dest, self.rank, tag).put(obj)

    def recv(self, source: int, tag: int = _SENTINEL_TAG, timeout: float | None = 60.0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        return self._world.queue_for(self.rank, source, tag).get(timeout=timeout)

    # -- collectives -----------------------------------------------------------

    def alltoallv(self, send: Sequence[Any]) -> list[Any]:
        """Each rank provides ``size`` buffers; receives one from each rank."""
        if len(send) != self.size:
            raise ValueError(f"alltoallv needs {self.size} send buffers, got {len(send)}")
        w = self._world
        for dst in range(self.size):
            w.slots[dst][self.rank] = send[dst]
        w.barrier.wait()
        recv = list(w.slots[self.rank])
        w.barrier.wait()  # nobody overwrites slots until everyone has read
        return recv

    # alltoall of scalars has identical data movement.
    alltoall = alltoallv

    def allgather(self, value: Any) -> list[Any]:
        w = self._world
        w.reduce_buf[self.rank] = value
        w.barrier.wait()
        out = list(w.reduce_buf)
        w.barrier.wait()
        return out

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        contributions = self.allgather(value)
        acc = contributions[0]
        for v in contributions[1:]:
            acc = op(acc, v)
        return acc

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        out = self.allgather(value)
        return out if self.rank == root else None

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self.allgather(value if self.rank == root else None)[root]

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError(f"root must scatter exactly {self.size} values")
        return self.allgather(list(values) if self.rank == root else None)[root][self.rank]


class ThreadedWorld:
    """Launches an SPMD program across ``size`` ranks on threads."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world size must be positive")
        self.size = size

    def run(self, program: Callable[..., Any], *args_per_rank: Sequence[Any]) -> list[Any]:
        """Run ``program(comm, *rank_args)`` on every rank; return results.

        Each element of ``args_per_rank`` is a per-rank sequence; rank ``r``
        receives ``args_per_rank[0][r], args_per_rank[1][r], ...``.
        """
        for arg in args_per_rank:
            if len(arg) != self.size:
                raise ValueError("each per-rank argument sequence must have one entry per rank")
        state = _WorldState(self.size)
        results: list[Any] = [None] * self.size

        def runner(rank: int) -> None:
            try:
                results[rank] = program(Comm(state, rank), *(arg[rank] for arg in args_per_rank))
            except threading.BrokenBarrierError:
                pass  # another rank failed; its exception is re-raised below
            except BaseException as exc:  # noqa: BLE001 - must cross threads
                state.fail(exc)

        threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(self.size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if state.failure is not None:
            raise state.failure
        return results


def run_spmd(size: int, program: Callable[..., Any], *args_per_rank: Sequence[Any]) -> list[Any]:
    """Convenience wrapper: ``ThreadedWorld(size).run(program, ...)``."""
    return ThreadedWorld(size).run(program, *args_per_rank)
