"""On-disk k-mer count database (binary) and TSV export.

Real k-mer counters persist their histograms (KMC's database, Jellyfish's
``.jf``, Squeakr's CQF dumps) so downstream tools — assemblers, classifiers,
search indexes (Section II-A) — can consume them without recounting.  This
module provides the equivalent for :class:`repro.kmers.KmerSpectrum`:

* a compact binary format (``.rkdb``): magic, version, k, entry count,
  then the sorted packed-key array and the count array, both raw
  little-endian NumPy buffers — O(1) metadata reads and zero-parse loads;
* a human-readable TSV form (``ACGT... <tab> count``) for interop.

Both round-trip exactly and are covered by property tests.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from ..dna.encoding import kmer_to_string, string_to_kmer
from .spectrum import KmerSpectrum

__all__ = ["write_kmerdb", "read_kmerdb", "read_kmerdb_header", "write_tsv", "read_tsv"]

_MAGIC = b"RKDB"
_VERSION = 1
_HEADER = struct.Struct("<4sHHq")  # magic, version, k, n_entries


def write_kmerdb(path: str | Path, spectrum: KmerSpectrum) -> int:
    """Write a spectrum to the binary database format; returns bytes written."""
    path = Path(path)
    header = _HEADER.pack(_MAGIC, _VERSION, spectrum.k, spectrum.n_distinct)
    values = np.ascontiguousarray(spectrum.values, dtype="<u8")
    counts = np.ascontiguousarray(spectrum.counts, dtype="<i8")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(values.tobytes())
        fh.write(counts.tobytes())
    return _HEADER.size + values.nbytes + counts.nbytes


def read_kmerdb_header(path: str | Path) -> tuple[int, int]:
    """Read just ``(k, n_entries)`` without loading the arrays."""
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise ValueError(f"{path}: truncated header")
    magic, version, k, n_entries = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise ValueError(f"{path}: not a k-mer database (bad magic {magic!r})")
    if version != _VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    if not 1 <= k <= 32 or n_entries < 0:
        raise ValueError(f"{path}: corrupt header (k={k}, n={n_entries})")
    return k, n_entries


def read_kmerdb(path: str | Path) -> KmerSpectrum:
    """Load a spectrum written by :func:`write_kmerdb` (exact round trip)."""
    k, n_entries = read_kmerdb_header(path)
    with open(path, "rb") as fh:
        fh.seek(_HEADER.size)
        values = np.frombuffer(fh.read(8 * n_entries), dtype="<u8")
        counts = np.frombuffer(fh.read(8 * n_entries), dtype="<i8")
    if values.shape[0] != n_entries or counts.shape[0] != n_entries:
        raise ValueError(f"{path}: truncated payload")
    return KmerSpectrum(k=k, values=values.astype(np.uint64), counts=counts.astype(np.int64))


def write_tsv(path: str | Path, spectrum: KmerSpectrum) -> int:
    """Write ``kmer<TAB>count`` lines (decoded bases); returns line count."""
    with open(path, "w") as fh:
        for value, count in zip(spectrum.values.tolist(), spectrum.counts.tolist()):
            fh.write(f"{kmer_to_string(value, spectrum.k)}\t{count}\n")
    return spectrum.n_distinct


def read_tsv(path: str | Path, k: int | None = None) -> KmerSpectrum:
    """Read a ``kmer<TAB>count`` file back into a spectrum.

    ``k`` is inferred from the first line when omitted; all lines must
    agree.  Keys are re-sorted, so files produced by other tools in any
    order load correctly.
    """
    values: list[int] = []
    counts: list[int] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                kmer, count = line.split("\t")
            except ValueError:
                raise ValueError(f"{path}:{lineno}: expected 'kmer<TAB>count'") from None
            if k is None:
                k = len(kmer)
            elif len(kmer) != k:
                raise ValueError(f"{path}:{lineno}: k-mer length {len(kmer)} != {k}")
            values.append(string_to_kmer(kmer))
            counts.append(int(count))
    if k is None:
        raise ValueError(f"{path}: empty file and no k given")
    varr = np.array(values, dtype=np.uint64)
    carr = np.array(counts, dtype=np.int64)
    order = np.argsort(varr)
    return KmerSpectrum(k=k, values=varr[order], counts=carr[order])
