#!/usr/bin/env python
"""CI guard: the fused path must stay identical and stay fast.

Runs a deliberately small slice of the fig6 grid (one Table I dataset,
all three variants) with the staged-sequential and fused paths timed
back-to-back, then enforces two gates:

1. **identity** — the fused results must be bit-identical to the staged
   results (spectrum, timing floats, traffic, insert statistics), and so
   must the out-of-core spill paths (staged: exchange partitions spooled
   to disk + external merge; blocked fused×spill: ``fused=True`` +
   ``spill_dir``) and the process execution substrate
   (``parallel="process:2"``, forked workers + shared-memory transport;
   skipped only where ``os.fork`` does not exist).  Any divergence is an
   immediate failure; there is no tolerance.
2. **speedup floor** — the measured staged/fused host-time ratio must
   not fall below the committed ``BENCH_fused.json`` grid ratio scaled
   by the benchmark's noise band.  The ratio is a same-machine paired
   measurement, so unlike absolute seconds it transfers across CI
   hardware; the noise-band scaling absorbs the remaining jitter of a
   shared runner and the smaller workload.  The gate is machine-aware:
   on a single-core host (``os.cpu_count() == 1``) identity is still
   enforced but speedup floors are skipped with an explicit message — a
   one-core runner can prove correctness, not concurrency.
3. **calibration drift** — each cell's *modeled* phase seconds (parse,
   exchange, count) must equal the ``model_times`` recorded in
   ``BENCH_fused.json`` before the machine-model refactor, exactly.
   Model times are deterministic functions of the data and the Summit
   calibration constants, so any difference — float-level included —
   means the summit presets no longer encode the paper's machine.
4. **spill-overhead ceiling** — the measured staged-spill/sequential
   host-time ratio on the guard slice must not exceed the committed
   ``BENCH_spill.json`` ratio (recomputed over the same cells) scaled
   by the noise band's upper edge.  Like the speedup floor this is a
   same-machine paired ratio, so it transfers across CI hardware; it
   bounds regressions in the spool I/O path (coalesced partition
   writes, buffered run streaming).  Skipped on single-core hosts with
   the speedup floor.
5. **figure calibration** — the fig8 alltoallv seconds/speedups and
   fig9 insertion rates recaptured via
   ``tools/capture_bench_figures.py`` must equal the committed
   ``BENCH_figures.json`` record float for float.  This is the
   communication-model analogue of gate 3: the hierarchical network
   layer must stay a *bit-exact* superset of the flat alpha-beta model
   under the default Summit presets.

Usage::

    PYTHONPATH=src python benchmarks/bench_guard.py [--bench BENCH_fused.json]
        [--datasets vvulnificus30x] [--nodes 16] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_stages import NOISE_BAND, _assert_identical, _run_grid  # noqa: E402

from repro.core.memory import ScratchArena  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--bench", default="BENCH_fused.json", help="committed benchmark JSON")
    ap.add_argument(
        "--spill-bench", default="BENCH_spill.json", help="committed out-of-core benchmark JSON"
    )
    ap.add_argument(
        "--figures-bench", default="BENCH_figures.json", help="committed fig8/fig9 model record"
    )
    ap.add_argument("--datasets", default="vvulnificus30x", help="comma-separated Table I names")
    ap.add_argument("--nodes", type=int, default=16, help="simulated Summit node count")
    ap.add_argument("--repeats", type=int, default=3, help="take the best of N paired runs per cell")
    args = ap.parse_args(argv)

    committed = json.loads(Path(args.bench).read_text())
    committed_speedup = committed["fused_speedup"]
    floor = round(NOISE_BAND[0] * committed_speedup, 3)

    datasets = [d for d in args.datasets.split(",") if d]
    substrates = ("process:2",) if hasattr(os, "fork") else ()
    with tempfile.TemporaryDirectory(prefix="guard-spool-") as spool:
        cells = _run_grid(
            datasets, args.nodes, 1, args.repeats, ScratchArena(),
            spill_dir=spool, substrates=substrates,
        )

    committed_model = committed.get("model_times", {})
    drifted: list[str] = []
    total_seq = total_fused = total_spill = 0.0
    for key, (best, results) in cells.items():
        _assert_identical(results["sequential"], results["fused"], f"{key} (fused)")
        _assert_identical(results["sequential"], results["spill"], f"{key} (spill)")
        _assert_identical(results["sequential"], results["fused-spill"], f"{key} (fused-spill)")
        for setting in substrates:
            _assert_identical(
                results["sequential"], results[f"substrate:{setting}"], f"{key} ({setting})"
            )
        timing = results["sequential"].timing
        expected = committed_model.get(key)
        if expected is not None:
            got = {
                "parse_s": timing.parse,
                "exchange_s": timing.exchange,
                "count_s": timing.count,
                "total_s": timing.total,
            }
            for phase, want in expected.items():
                if got[phase] != want:
                    drifted.append(f"{key}: {phase} modeled {got[phase]!r}, committed {want!r}")
        total_seq += best["sequential"]
        total_fused += best["fused"]
        total_spill += best["spill"]
        print(
            f"  {key:45s} seq {best['sequential']:7.3f}s  fused {best['fused']:7.3f}s "
            f"({best['sequential'] / best['fused']:.2f}x)"
        )

    if drifted:
        for line in drifted:
            print(f"FAIL: {line}", file=sys.stderr)
        print(
            f"FAIL: {len(drifted)} modeled phase time(s) drifted from the pre-refactor "
            "summit calibration (BENCH_fused.json model_times)",
            file=sys.stderr,
        )
        return 1
    checked = sum(1 for key in cells if key in committed_model)
    print(f"model-time calibration: OK ({checked} cells exact vs pre-refactor record)")

    # Gate 5: fig8/fig9 figure observables, replayed exactly.
    figures_bench = Path(args.figures_bench)
    if figures_bench.exists():
        from capture_bench_figures import capture

        committed_figures = json.loads(figures_bench.read_text())
        replayed = capture()
        fig_drift: list[str] = []
        for fig in ("fig8", "fig9"):
            for variant, expected in committed_figures.get(fig, {}).items():
                got = replayed.get(fig, {}).get(variant)
                if got is None:
                    fig_drift.append(f"{fig}/{variant}: missing from replay")
                    continue
                for metric, want in expected.items():
                    if got.get(metric) != want:
                        fig_drift.append(
                            f"{fig}/{variant}: {metric} modeled {got.get(metric)!r}, committed {want!r}"
                        )
        if fig_drift:
            for line in fig_drift:
                print(f"FAIL: {line}", file=sys.stderr)
            print(
                f"FAIL: {len(fig_drift)} figure observable(s) drifted from the committed "
                "BENCH_figures.json record (fig8 alltoallv / fig9 insertion rates)",
                file=sys.stderr,
            )
            return 1
        n_metrics = sum(
            len(v) for fig in ("fig8", "fig9") for v in committed_figures.get(fig, {}).values()
        )
        print(f"figure calibration: OK ({n_metrics} fig8/fig9 observables exact vs committed record)")
    else:
        print(f"figure calibration: {figures_bench} not found; gate skipped")

    cpu_count = os.cpu_count() or 1
    substrate_label = " + ".join(substrates) if substrates else "no process substrate (no fork)"
    speedup = total_seq / total_fused
    print(
        f"fused + spill + {substrate_label} identity: OK; fused speedup {speedup:.3f}x "
        f"(committed {committed_speedup}x, floor {floor}x = {NOISE_BAND[0]} * committed; "
        f"cpu_count={cpu_count})"
    )
    if cpu_count < 2:
        print(
            f"speedup floor: SKIPPED (cpu_count={cpu_count}; a single-core host proves "
            "bit-identity but cannot demonstrate concurrency — see docs/EXECUTION.md)"
        )
        return 0
    if speedup < floor:
        print(f"FAIL: fused speedup {speedup:.3f}x fell below the floor {floor}x", file=sys.stderr)
        return 1

    # Spill-overhead ceiling: same-machine paired ratio vs the committed
    # record, recomputed over exactly the cells this guard slice ran.
    spill_bench = Path(args.spill_bench)
    if spill_bench.exists():
        committed_spill = json.loads(spill_bench.read_text())
        spill_cells = {c["cell"]: c for c in committed_spill.get("cells", [])}
        matched = [key for key in cells if key in spill_cells]
        if matched:
            committed_ratio = sum(spill_cells[k]["spill_s"] for k in matched) / sum(
                spill_cells[k]["sequential_s"] for k in matched
            )
            ceiling = round(NOISE_BAND[1] * committed_ratio, 3)
            measured = total_spill / total_seq
            print(
                f"spill overhead: {measured:.3f}x of sequential (committed slice "
                f"{committed_ratio:.3f}x, ceiling {ceiling}x = {NOISE_BAND[1]} * committed)"
            )
            if measured > ceiling:
                print(
                    f"FAIL: spill overhead {measured:.3f}x exceeded the ceiling {ceiling}x",
                    file=sys.stderr,
                )
                return 1
        else:
            print("spill overhead: no committed cells match the guard slice; ceiling skipped")
    else:
        print(f"spill overhead: {spill_bench} not found; ceiling skipped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
