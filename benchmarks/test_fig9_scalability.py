"""Fig. 9: scalability of the GPU computation kernels' k-mer insertion rate.

Paper: rates in billions of k-mers/s from 4 to 128 nodes (6 GPUs/node);
small datasets stop at 32 nodes; "linear speedup in almost all the
datasets"; "C. elegans 40X achieves 4x, 8x, 16x, 37x speedup on 16, 32, 64
and 128 nodes"; both large datasets gain ~2.3x going 64 -> 128; skewed
small datasets (V. vulnificus) scale sublinearly.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_series, write_report
from repro.dna.datasets import LARGE_DATASETS, SMALL_DATASETS

SMALL_NODE_COUNTS = [4, 16, 32]
LARGE_NODE_COUNTS = [4, 16, 32, 64, 128]


def _rates(cache, name, node_counts):
    rates = []
    for nodes in node_counts:
        r = cache.run(name, n_nodes=nodes, backend="gpu", mode="kmer")
        rates.append(r.insertion_rate())
    return rates


def test_fig9_insertion_rate_scaling(benchmark, cache, results_dir):
    def experiment():
        series = {}
        for name in SMALL_DATASETS:
            series[name] = (SMALL_NODE_COUNTS, _rates(cache, name, SMALL_NODE_COUNTS))
        for name in LARGE_DATASETS:
            series[name] = (LARGE_NODE_COUNTS, _rates(cache, name, LARGE_NODE_COUNTS))
        return series

    series = run_once(benchmark, experiment)

    lines = [
        "Fig. 9: k-mer insertion rate (computation kernels only, excl. exchange)",
        "paper: near-linear scaling; ~2.3x from 64 to 128 nodes for the large datasets",
        "",
    ]
    for name, (nodes, rates) in series.items():
        lines.append(format_series(name, nodes, [f"{x / 1e9:.2f}B/s" for x in rates]))
    write_report("fig9_scalability", "\n".join(lines), results_dir)

    for name, (nodes, rates) in series.items():
        # Rates must increase monotonically with node count.
        assert all(b > a for a, b in zip(rates, rates[1:])), name
        # Scaling from 4 nodes to the max is at least half-linear ("linear
        # speedup in almost all the datasets", with skew-induced dips).
        span = nodes[-1] / nodes[0]
        gain = rates[-1] / rates[0]
        assert gain > 0.4 * span, (name, gain, span)

    # Large datasets: 64 -> 128 nodes gives ~2.3x in the paper; accept
    # anything clearly super-1.5x.
    for name in LARGE_DATASETS:
        nodes, rates = series[name]
        gain = rates[nodes.index(128)] / rates[nodes.index(64)]
        assert 1.5 < gain <= 2.6, (name, gain)

    # Large-dataset rates reach the paper's "billions per second" regime.
    assert max(series["hsapiens54x"][1]) > 5e9
