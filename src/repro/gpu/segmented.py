"""Segmented counting hash table: every rank's table in one allocation.

The staged engine gives each simulated rank its own
:class:`~repro.gpu.hashtable.DeviceHashTable`, so a superstep's count
phase performs P independent probe loops over small arrays.  The fused
engine (:mod:`repro.core.stages.fused`) instead keeps all P tables in a
single pair of flat ``keys``/``counts`` arrays partitioned into
power-of-two *regions*::

    slot(key, rank) = region_base[rank] + (hash(key) & rank_mask[rank])

and runs the vectorized probe rounds over every rank's pending keys at
once.  Because regions are disjoint, rounds of the fused loop perform
exactly the same slot reads/writes as the per-rank loops would, so probe
counts, CAS conflicts, claimed slots, and the final layout are
bit-identical to running :meth:`DeviceHashTable.insert_batch` rank by
rank — the claim winner for a contested slot is decided among keys of a
single rank either way (see ``_insert_unique_flat``).

``from_tables`` adopts existing per-rank tables by copying their
key/count layout verbatim, so switching an in-flight
:class:`~repro.core.stages.scheduler.PipelineState` between staged and
fused execution cannot perturb future probe statistics.

**File-backed mode** (``table_dir=``): the keys/counts slabs become
``np.memmap`` files in a private directory, so a table can exceed the
anonymous-memory the process is allowed (the BSC NVM fast-storage layout,
PAPERS.md).  ``np.memmap`` is an ``ndarray`` subclass, so every probe,
insert, regrow, and merge runs the identical NumPy operations on the
identical values — observables are bit-identical to the in-RAM table;
only the backing store changes.  Regrows write a new slab *generation*
before the old mappings are dropped (the region copy still reads them),
then unlink the superseded files.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from pathlib import Path

import numpy as np

from ..hashing.murmur3 import hash_kmers_batch
from ..telemetry import active
from .hashtable import EMPTY_KEY, PROBING_SCHEMES, DeviceHashTable, InsertStats

__all__ = ["SegmentedHashTable", "SegmentedRankView"]

#: The fused probe loop gathers/scatters randomly within each rank's
#: region.  Spanning all P regions at once blows the cache, so inserts run
#: over blocks of whole ranks whose regions total roughly this many bytes;
#: regions are disjoint, so any grouping of whole ranks is bit-identical.
INSERT_BLOCK_BYTES = 1 << 21


class SegmentedHashTable:
    """All ranks' counting tables in one keys/counts allocation."""

    def __init__(
        self,
        capacity_hints: list[int] | np.ndarray,
        *,
        seed: int = 0,
        max_load_factor: float = 0.7,
        probing: str = "linear",
        table_dir: str | Path | None = None,
    ) -> None:
        if not 0.1 <= max_load_factor < 1.0:
            raise ValueError("max_load_factor must be in [0.1, 1.0)")
        if probing not in PROBING_SCHEMES:
            raise ValueError(f"probing must be one of {PROBING_SCHEMES}, got {probing!r}")
        self.seed = seed
        self.max_load_factor = max_load_factor
        self.probing = probing
        self._init_backing(table_dir)
        caps = []
        for hint in capacity_hints:
            if hint < 1:
                raise ValueError("capacity_hint must be positive")
            # Same growth rule as DeviceHashTable.__init__.
            capacity = 1
            while capacity * max_load_factor < hint or capacity < 64:
                capacity *= 2
            caps.append(capacity)
        self._layout(np.asarray(caps, dtype=np.int64))
        self.n_entries_per_rank = np.zeros(self.n_ranks, dtype=np.int64)

    def _init_backing(self, table_dir: str | Path | None) -> None:
        """Choose the slab store: anonymous arrays or memmap files."""
        self._table_dir: Path | None = None
        self._generation = 0
        self._slab_paths: tuple[Path, ...] = ()
        self._finalizer = None
        if table_dir is not None:
            base = Path(table_dir)
            base.mkdir(parents=True, exist_ok=True)
            self._table_dir = Path(tempfile.mkdtemp(prefix="table-", dir=base))
            self._finalizer = weakref.finalize(self, shutil.rmtree, self._table_dir, True)

    def _layout(self, capacities: np.ndarray) -> None:
        self.capacities = capacities
        self.region_base = np.zeros(capacities.shape[0] + 1, dtype=np.int64)
        np.cumsum(capacities, out=self.region_base[1:])
        self._base_u64 = self.region_base[:-1].astype(np.uint64)
        self._masks = (capacities - 1).astype(np.uint64)
        total = int(self.region_base[-1])
        if self._table_dir is None or total == 0:
            self.keys = np.full(total, EMPTY_KEY, dtype=np.uint64)
            self.counts = np.zeros(total, dtype=np.int64)
            return
        # File-backed slabs.  Each layout writes a fresh generation: a
        # _regrow caller still holds the previous arrays while regions copy
        # across, so the old maps must stay valid.  The superseded files
        # are unlinked immediately — on POSIX the live mappings keep their
        # data reachable until the arrays are dropped.
        stale = self._slab_paths
        gen = self._generation
        self._generation += 1
        kpath = self._table_dir / f"keys.g{gen}.bin"
        cpath = self._table_dir / f"counts.g{gen}.bin"
        self.keys = np.memmap(kpath, dtype=np.uint64, mode="w+", shape=(total,))
        self.keys[:] = EMPTY_KEY
        self.counts = np.memmap(cpath, dtype=np.int64, mode="w+", shape=(total,))
        self._slab_paths = (kpath, cpath)
        for path in stale:
            path.unlink(missing_ok=True)

    @property
    def backing_dir(self) -> Path | None:
        """The private slab directory of a file-backed table (else ``None``)."""
        return self._table_dir

    def close(self) -> None:
        """Remove a file-backed table's slab directory (in-RAM: no-op).

        Existing array references stay readable (POSIX keeps unlinked
        mapped data alive), but the disk space is reclaimed now instead of
        at garbage collection, which also runs this via a finalizer.
        """
        if self._finalizer is not None:
            self._finalizer()

    @classmethod
    def from_tables(
        cls, tables: list[DeviceHashTable], *, table_dir: str | Path | None = None
    ) -> "SegmentedHashTable":
        """Adopt per-rank tables, preserving each one's slot layout exactly."""
        if not tables:
            raise ValueError("need at least one table")
        first = tables[0]
        for t in tables:
            if (t.seed, t.max_load_factor, t.probing) != (
                first.seed,
                first.max_load_factor,
                first.probing,
            ):
                raise ValueError("per-rank tables disagree on seed/load-factor/probing")
        self = cls.__new__(cls)
        self.seed = first.seed
        self.max_load_factor = first.max_load_factor
        self.probing = first.probing
        self._init_backing(table_dir)
        self._layout(np.asarray([t.capacity for t in tables], dtype=np.int64))
        self.n_entries_per_rank = np.asarray([t.n_entries for t in tables], dtype=np.int64)
        for r, t in enumerate(tables):
            lo, hi = int(self.region_base[r]), int(self.region_base[r + 1])
            self.keys[lo:hi] = t.keys
            self.counts[lo:hi] = t.counts
        return self

    # -- properties --------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return int(self.capacities.shape[0])

    @property
    def table_bytes(self) -> int:
        return int(self.keys.nbytes + self.counts.nbytes)

    def view(self, rank: int) -> "SegmentedRankView":
        return SegmentedRankView(self, rank)

    def views(self) -> list["SegmentedRankView"]:
        return [SegmentedRankView(self, r) for r in range(self.n_ranks)]

    def items_of(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """Rank's (key, count) pairs sorted by key (as ``DeviceHashTable.items``)."""
        lo, hi = int(self.region_base[rank]), int(self.region_base[rank + 1])
        keys = self.keys[lo:hi]
        mask = keys != EMPTY_KEY
        keys = keys[mask]
        counts = self.counts[lo:hi][mask]
        order = np.argsort(keys)
        return keys[order], counts[order]

    def items_flat(self) -> tuple[np.ndarray, np.ndarray]:
        """All ranks' (key, count) pairs in one storage pass, slot order.

        The union of the per-rank ``items_of`` sets without their per-rank
        key sorts — for consumers that aggregate globally (the spectrum
        merge re-sorts through ``np.unique`` anyway).
        """
        mask = self.keys != EMPTY_KEY
        return self.keys[mask], self.counts[mask]

    # -- probing -----------------------------------------------------

    def _local_slots(self, base: np.ndarray, stride: np.ndarray, masks: np.ndarray, probe_no: np.ndarray) -> np.ndarray:
        i = probe_no.astype(np.uint64)
        if self.probing == "linear":
            return (base + i) & masks
        if self.probing == "quadratic":
            return (base + (i * (i + np.uint64(1))) // np.uint64(2)) & masks
        return (base + i * stride) & masks

    def _strides(self, uniq: np.ndarray, masks: np.ndarray) -> np.ndarray:
        if self.probing != "double":
            return np.ones(uniq.shape[0], dtype=np.uint64)
        return (hash_kmers_batch(uniq, seed=self.seed + 0x9E3779B9) | np.uint64(1)) & masks

    # -- operations --------------------------------------------------

    def insert_flat(
        self,
        values: np.ndarray,
        seg_offsets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> list[InsertStats]:
        """Insert one rank-segmented flat batch; per-rank probe statistics.

        ``values[seg_offsets[r]:seg_offsets[r+1]]`` are rank ``r``'s keys.
        Equivalent (bit-for-bit, including telemetry totals) to calling
        ``DeviceHashTable.insert_batch`` on each rank's segment in rank
        order; ranks with empty segments contribute ``InsertStats.zero()``
        and no telemetry, exactly as the staged path skips their insert.
        """
        p = self.n_ranks
        offs = np.asarray(seg_offsets, dtype=np.int64)
        if offs.shape[0] != p + 1:
            raise ValueError("seg_offsets must have n_ranks + 1 entries")
        vals = np.ascontiguousarray(values, dtype=np.uint64)
        if int(offs[-1]) != vals.shape[0]:
            raise ValueError("seg_offsets do not span the value array")
        if vals.size == 0:
            return [InsertStats.zero() for _ in range(p)]
        if bool((vals == EMPTY_KEY).any()):
            raise ValueError("key equal to the EMPTY sentinel cannot be stored (need k <= 31)")

        seg_lens = np.diff(offs)
        wts = None
        if weights is not None:
            wts = np.ascontiguousarray(weights, dtype=np.int64)
            if wts.shape != vals.shape:
                raise ValueError("weights must parallel values")
            if wts.size and int(wts.min()) < 1:
                raise ValueError("weights must be >= 1")

        # Per-rank dedup: each rank's segment is already contiguous, so run
        # exactly the np.unique aggregation the per-rank tables run.
        uniq_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        distinct_in_batch = np.zeros(p, dtype=np.int64)
        for r in range(p):
            lo, hi = int(offs[r]), int(offs[r + 1])
            if hi == lo:
                continue
            if wts is None:
                uniq_r, w_r = np.unique(vals[lo:hi], return_counts=True)
                w_r = w_r.astype(np.int64)
            else:
                uniq_r, inverse = np.unique(vals[lo:hi], return_inverse=True)
                w_r = np.bincount(inverse, weights=wts[lo:hi]).astype(np.int64)
            uniq_parts.append(uniq_r)
            w_parts.append(w_r)
            distinct_in_batch[r] = uniq_r.shape[0]
        uniq = np.concatenate(uniq_parts) if len(uniq_parts) > 1 else uniq_parts[0]
        w = np.concatenate(w_parts) if len(w_parts) > 1 else w_parts[0]
        useg = np.repeat(np.arange(p, dtype=np.int64), distinct_in_batch)

        inst_per_rank = np.bincount(useg, weights=w, minlength=p).astype(np.int64)

        # Capacity pre-check per rank (DeviceHashTable.insert_batch's resize
        # loop); grown regions are re-laid-out once into their final size,
        # which matches repeated doubling because every intermediate rehash
        # re-inserts the same sorted item set.
        resizes = np.zeros(p, dtype=np.int64)
        new_caps = self.capacities.copy()
        need = self.n_entries_per_rank + distinct_in_batch
        for r in np.flatnonzero(need > new_caps * self.max_load_factor):
            while need[r] > new_caps[r] * self.max_load_factor:
                new_caps[r] *= 2
                resizes[r] += 1
        if resizes.any():
            self._regrow(new_caps)

        # Insert cache-sized blocks of whole ranks (see INSERT_BLOCK_BYTES).
        # ``uniq`` is (rank, key)-sorted, so each block is one slice.
        probes = np.empty(uniq.shape[0], dtype=np.int64)
        new_per_rank = np.zeros(p, dtype=np.int64)
        conflicts_per_rank = np.zeros(p, dtype=np.int64)
        rounds_per_rank = np.zeros(p, dtype=np.int64)
        region_bytes = self.capacities * 16  # uint64 keys + int64 counts
        r0 = 0
        while r0 < p:
            r1 = r0 + 1
            total_bytes = int(region_bytes[r0])
            while r1 < p and total_bytes + int(region_bytes[r1]) <= INSERT_BLOCK_BYTES:
                total_bytes += int(region_bytes[r1])
                r1 += 1
            lo, hi = np.searchsorted(useg, [r0, r1], side="left")
            if hi > lo:
                bp, bn, bc, br = self._insert_unique_flat(uniq[lo:hi], useg[lo:hi], w[lo:hi])
                probes[lo:hi] = bp
                new_per_rank += bn
                conflicts_per_rank += bc
                np.maximum(rounds_per_rank, br, out=rounds_per_rank)
            r0 = r1
        total_probes = np.bincount(useg, weights=probes * w, minlength=p).astype(np.int64)

        stats = [
            InsertStats(
                n_instances=int(inst_per_rank[r]),
                n_distinct=int(new_per_rank[r]),
                total_probes=int(total_probes[r]),
                max_probe=int(rounds_per_rank[r]),
                cas_conflicts=int(conflicts_per_rank[r]),
                rounds=int(rounds_per_rank[r]),
                resizes=int(resizes[r]),
            )
            if seg_lens[r]
            else InsertStats.zero()
            for r in range(p)
        ]

        reg = active()
        if reg is not None:
            nonempty = int((seg_lens > 0).sum())
            reg.counter("hashtable_inserts_total", "insert_batch calls").inc(nonempty)
            reg.counter("hashtable_instances_total", "k-mer instances inserted").inc(
                int(inst_per_rank.sum())
            )
            reg.counter("hashtable_distinct_total", "New distinct keys claimed").inc(
                int(new_per_rank.sum())
            )
            reg.counter("hashtable_cas_conflicts_total", "Lost atomicCAS claims").inc(
                int(conflicts_per_rank.sum())
            )
            reg.counter("hashtable_resizes_total", "Table growth events").inc(int(resizes.sum()))
            load_gauge = reg.gauge("hashtable_load_factor_max", "Peak table load factor")
            for r in np.flatnonzero(seg_lens > 0):
                load_gauge.set_max(self.n_entries_per_rank[r] / self.capacities[r])
            # One observe_many over the concatenation is exact: the bucket
            # adds are integers and every partial float sum of the integer
            # products stays below 2**53.
            reg.histogram(
                "hashtable_probe_length",
                "Probe-sequence length per inserted instance",
                buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128),
            ).observe_many(probes, w)
        return stats

    def _insert_unique_flat(
        self, uniq: np.ndarray, useg: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused probe loop over every rank's pre-deduplicated keys.

        ``uniq`` is sorted by (rank, key).  Claim winners are decided by
        ``np.unique(claim_slots, return_index=True)`` just like the
        per-rank loop: regions are slot-disjoint, so a contested slot only
        sees candidates from one rank, and within a rank the pending order
        is ascending-key — the same order ``np.unique`` hands each rank's
        insert — so the winner is the per-rank winner.
        """
        p = self.n_ranks
        key_masks = self._masks[useg]
        key_rbase = self._base_u64[useg]
        base = (hash_kmers_batch(uniq, seed=self.seed) & key_masks).astype(np.uint64)
        stride = self._strides(uniq, key_masks)
        probe_no = np.zeros(uniq.shape[0], dtype=np.int64)
        pending = np.arange(uniq.shape[0], dtype=np.int64)
        probes = np.ones(uniq.shape[0], dtype=np.int64)
        new_per_rank = np.zeros(p, dtype=np.int64)
        conflicts_per_rank = np.zeros(p, dtype=np.int64)
        guard = int(self.capacities.max()) + 1
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > guard:
                raise RuntimeError("hash table probe loop failed to terminate (table full?)")
            local = self._local_slots(
                base[pending], stride[pending], key_masks[pending], probe_no[pending]
            )
            s = (key_rbase[pending] + local).astype(np.int64)
            occupant = self.keys[s]
            vals = uniq[pending]

            hit = occupant == vals
            self.counts[s[hit]] += w[pending[hit]]

            empty = occupant == EMPTY_KEY
            if empty.any():
                empty_idx = np.flatnonzero(empty)
                claim_slots = s[empty_idx]
                _, first = np.unique(claim_slots, return_index=True)
                winners = empty_idx[first]
                ws = s[winners]
                self.keys[ws] = vals[winners]
                self.counts[ws] += w[pending[winners]]
                win_seg = useg[pending[winners]]
                claim_seg = useg[pending[empty_idx]]
                win_counts = np.bincount(win_seg, minlength=p)
                new_per_rank += win_counts
                conflicts_per_rank += np.bincount(claim_seg, minlength=p) - win_counts

            still = self.keys[s] != vals
            nxt = pending[still]
            probe_no[nxt] += 1
            probes[nxt] += 1
            pending = nxt

        self.n_entries_per_rank += new_per_rank
        rounds_per_rank = np.zeros(p, dtype=np.int64)
        np.maximum.at(rounds_per_rank, useg, probes)
        return probes, new_per_rank, conflicts_per_rank, rounds_per_rank

    def _regrow(self, new_caps: np.ndarray) -> None:
        """Re-layout with grown regions; unchanged regions copy verbatim."""
        old_base = self.region_base
        old_keys = self.keys
        old_counts = self.counts
        old_caps = self.capacities
        grown = np.flatnonzero(new_caps != old_caps)
        rehash = []
        for r in grown:
            lo, hi = int(old_base[r]), int(old_base[r + 1])
            region_keys = old_keys[lo:hi]
            mask = region_keys != EMPTY_KEY
            keys = region_keys[mask]
            counts = old_counts[lo:hi][mask]
            order = np.argsort(keys)
            rehash.append((int(r), keys[order], counts[order]))
        self._layout(new_caps)
        keep = np.flatnonzero(new_caps == old_caps)
        for r in keep:
            olo, ohi = int(old_base[r]), int(old_base[r + 1])
            nlo, nhi = int(self.region_base[r]), int(self.region_base[r + 1])
            self.keys[nlo:nhi] = old_keys[olo:ohi]
            self.counts[nlo:nhi] = old_counts[olo:ohi]
        for r, keys, counts in rehash:
            self.n_entries_per_rank[r] = 0
            if keys.size:
                seg = np.full(keys.shape[0], r, dtype=np.int64)
                self._insert_unique_flat(keys, seg, counts)  # rehash; stats discarded

    def lookup_of(self, rank: int, values: np.ndarray) -> np.ndarray:
        """Counts stored for ``rank``'s keys (0 where absent)."""
        vals = np.ascontiguousarray(values, dtype=np.uint64)
        out = np.zeros(vals.shape[0], dtype=np.int64)
        if vals.size == 0:
            return out
        mask = self._masks[rank]
        rbase = self._base_u64[rank]
        base = (hash_kmers_batch(vals, seed=self.seed) & mask).astype(np.uint64)
        masks = np.full(vals.shape[0], mask, dtype=np.uint64)
        stride = self._strides(vals, masks)
        probe_no = np.zeros(vals.shape[0], dtype=np.int64)
        pending = np.arange(vals.shape[0], dtype=np.int64)
        for _ in range(int(self.capacities[rank]) + 1):
            if not pending.size:
                break
            local = self._local_slots(base[pending], stride[pending], masks[pending], probe_no[pending])
            s = (rbase + local).astype(np.int64)
            occupant = self.keys[s]
            hit = occupant == vals[pending]
            out[pending[hit]] = self.counts[s[hit]]
            cont = ~hit & (occupant != EMPTY_KEY)
            nxt = pending[cont]
            probe_no[nxt] += 1
            pending = nxt
        return out


class SegmentedRankView:
    """One rank's window onto a :class:`SegmentedHashTable`.

    Duck-types the parts of :class:`DeviceHashTable` the engine touches
    after counting (merge, checkpointing, end-of-run telemetry), so a
    :class:`~repro.core.stages.scheduler.PipelineState` can carry these
    in ``state.tables`` transparently.
    """

    def __init__(self, parent: SegmentedHashTable, rank: int) -> None:
        self._parent = parent
        self.rank = rank

    @property
    def seed(self) -> int:
        return self._parent.seed

    @property
    def max_load_factor(self) -> float:
        return self._parent.max_load_factor

    @property
    def probing(self) -> str:
        return self._parent.probing

    @property
    def capacity(self) -> int:
        return int(self._parent.capacities[self.rank])

    @property
    def n_entries(self) -> int:
        return int(self._parent.n_entries_per_rank[self.rank])

    @property
    def load_factor(self) -> float:
        return self.n_entries / self.capacity

    @property
    def table_bytes(self) -> int:
        return self.capacity * (np.dtype(np.uint64).itemsize + np.dtype(np.int64).itemsize)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        return self._parent.items_of(self.rank)

    def lookup_batch(self, values: np.ndarray) -> np.ndarray:
        return self._parent.lookup_of(self.rank, values)

    def insert_batch(
        self, values: np.ndarray, weights: np.ndarray | None = None, *, assume_unique: bool = False
    ) -> InsertStats:
        """Insert through the parent (a staged batch after a fused one)."""
        parent = self._parent
        offs = np.zeros(parent.n_ranks + 1, dtype=np.int64)
        offs[self.rank + 1 :] = np.asarray(values).shape[0]
        return parent.insert_flat(values, offs, weights=weights)[self.rank]
