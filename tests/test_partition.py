"""Tests for hash-based processor partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.partition import KmerPartitioner, MinimizerPartitioner, owner_of, owners_of


class TestOwnersOf:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**62), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=10),
    )
    def test_vector_matches_scalar(self, values, p, seed):
        arr = np.array(values, dtype=np.uint64)
        vec = owners_of(arr, p, seed=seed)
        assert vec.tolist() == [owner_of(v, p, seed=seed) for v in values]

    @given(st.integers(min_value=1, max_value=1000))
    def test_range(self, p):
        vals = np.arange(200, dtype=np.uint64)
        owners = owners_of(vals, p)
        assert owners.min() >= 0 and owners.max() < p

    def test_deterministic_same_kmer_same_owner(self):
        """Algorithm 1's invariant: every instance of a k-mer has one owner."""
        v = np.array([42, 42, 42], dtype=np.uint64)
        assert len(set(owners_of(v, 96).tolist())) == 1

    def test_near_uniform_distribution(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 2**62, size=200_000).astype(np.uint64)
        counts = np.bincount(owners_of(vals, 64), minlength=64)
        assert counts.max() / counts.mean() < 1.1

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            owners_of(np.array([1], dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            owner_of(1, 0)


class TestKmerPartitioner:
    def test_owners(self):
        part = KmerPartitioner(17)
        vals = np.arange(100, dtype=np.uint64)
        assert np.array_equal(part.owners(vals), owners_of(vals, 17))

    def test_seed_changes_layout(self):
        vals = np.arange(100, dtype=np.uint64)
        a = KmerPartitioner(16, seed=0).owners(vals)
        b = KmerPartitioner(16, seed=1).owners(vals)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            KmerPartitioner(0)


class TestMinimizerPartitioner:
    def test_hash_mode(self):
        part = MinimizerPartitioner(9, m=5)
        vals = np.arange(50, dtype=np.uint64)
        assert np.array_equal(part.owners(vals), owners_of(vals, 9))
        assert part.owner(7) == owner_of(7, 9)

    def test_assignment_table_mode(self):
        m = 3
        assignment = np.arange(4**m, dtype=np.int32) % 5
        part = MinimizerPartitioner(5, m=m, assignment=assignment)
        vals = np.array([0, 1, 63], dtype=np.uint64)
        assert part.owners(vals).tolist() == [0, 1, 63 % 5]
        assert part.owner(10) == 10 % 5

    def test_assignment_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            MinimizerPartitioner(4, m=3, assignment=np.zeros(10, dtype=np.int32))

    def test_assignment_rank_range_checked(self):
        bad = np.zeros(4**2, dtype=np.int32)
        bad[0] = 99
        with pytest.raises(ValueError, match="ranks outside"):
            MinimizerPartitioner(4, m=2, assignment=bad)

    def test_m_bounds(self):
        with pytest.raises(ValueError):
            MinimizerPartitioner(4, m=0)
        with pytest.raises(ValueError):
            MinimizerPartitioner(4, m=17)

    def test_locality_invariant(self):
        """All supermers sharing a minimizer go to one rank (Section IV-A)."""
        part = MinimizerPartitioner(24, m=7)
        minimizer = np.uint64(12345)
        owners = part.owners(np.full(10, minimizer, dtype=np.uint64))
        assert len(set(owners.tolist())) == 1
