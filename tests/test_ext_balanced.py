"""Tests for the frequency-aware balanced minimizer partitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.balanced import balanced_minimizer_assignment, lpt_assignment, minimizer_bin_weights
from repro.kmers.extract import extract_kmers
from repro.kmers.minimizers import minimizers_for_windows


class TestBinWeights:
    def test_weights_sum_to_valid_kmers(self, genome_reads):
        weights = minimizer_bin_weights(genome_reads, 17, 7)
        assert weights.shape == (4**7,)
        assert int(weights.sum()) == extract_kmers(genome_reads, 17).shape[0]

    def test_weights_match_direct_count(self, genome_reads):
        m = 5
        weights = minimizer_bin_weights(genome_reads, 11, m)
        mins = minimizers_for_windows(genome_reads.codes, 11, m)
        direct = np.bincount(mins.minimizer_values[mins.valid].astype(np.int64), minlength=4**m)
        assert np.array_equal(weights, direct)

    def test_sampling_reduces_mass_but_keeps_shape(self, genome_reads):
        full = minimizer_bin_weights(genome_reads, 17, 7)
        sampled = minimizer_bin_weights(genome_reads, 17, 7, sample_fraction=0.3, seed=1)
        assert 0 < sampled.sum() < full.sum()
        # heaviest full bins should mostly be nonzero in the sample
        top = np.argsort(full)[-20:]
        assert (sampled[top] > 0).mean() > 0.7

    def test_sample_fraction_validation(self, genome_reads):
        with pytest.raises(ValueError):
            minimizer_bin_weights(genome_reads, 17, 7, sample_fraction=0)


class TestLpt:
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_every_bin_assigned_in_range(self, weights, p):
        assignment = lpt_assignment(np.array(weights), p)
        assert assignment.shape == (len(weights),)
        assert assignment.min() >= 0 and assignment.max() < p

    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=8, max_size=100),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60)
    def test_lpt_within_approximation_bound(self, weights, p):
        """LPT's makespan is within 4/3 of OPT (Graham).  OPT is bounded
        below by the mean load, the heaviest bin, and — by pigeonhole over
        the p+1 largest bins — the smallest pair among them."""
        w = np.array(weights)
        lpt = lpt_assignment(w, p)
        loads = np.zeros(p)
        np.add.at(loads, lpt, w)
        desc = np.sort(w)[::-1]
        pair = int(desc[p - 1] + desc[p]) if w.shape[0] > p else 0
        lower_bound = max(w.sum() / p, int(w.max()), pair)
        assert loads.max() <= (4 / 3) * lower_bound + 1e-9

    def test_lpt_4_3_bound(self):
        """LPT is a 4/3-approximation of the optimal makespan."""
        rng = np.random.default_rng(0)
        w = rng.integers(1, 1000, size=300)
        p = 7
        assignment = lpt_assignment(w, p)
        loads = np.zeros(p)
        np.add.at(loads, assignment, w)
        lower_bound = max(w.sum() / p, w.max())
        assert loads.max() <= (4 / 3) * lower_bound + w.max() * 1e-9

    def test_zero_bins_round_robined(self):
        assignment = lpt_assignment(np.zeros(10, dtype=np.int64), 3)
        counts = np.bincount(assignment, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_assignment(np.array([1]), 0)


class TestEndToEnd:
    def test_reduces_imbalance_on_skewed_data(self, genome_reads):
        from repro.core import EngineOptions, PipelineConfig, run_pipeline
        from repro.mpi.topology import summit_gpu

        cluster = summit_gpu(4)
        cfg = PipelineConfig(k=17, mode="supermer", minimizer_len=7, window=15)
        hash_based = run_pipeline(genome_reads, cluster, cfg)
        assign = balanced_minimizer_assignment(genome_reads, 17, 7, cluster.n_ranks)
        balanced = run_pipeline(genome_reads, cluster, cfg, options=EngineOptions(minimizer_assignment=assign))
        assert balanced.load_stats().imbalance < hash_based.load_stats().imbalance
        assert balanced.load_stats().imbalance < 1.4

    def test_sampled_assignment_still_helps(self, genome_reads):
        from repro.core import EngineOptions, PipelineConfig, run_pipeline
        from repro.mpi.topology import summit_gpu

        cluster = summit_gpu(4)
        cfg = PipelineConfig(k=17, mode="supermer", minimizer_len=7, window=15)
        hash_based = run_pipeline(genome_reads, cluster, cfg)
        assign = balanced_minimizer_assignment(genome_reads, 17, 7, cluster.n_ranks, sample_fraction=0.25)
        balanced = run_pipeline(genome_reads, cluster, cfg, options=EngineOptions(minimizer_assignment=assign))
        assert balanced.load_stats().imbalance <= hash_based.load_stats().imbalance * 1.05
