"""Record the golden fixture for the staged-pipeline differential suite.

Run from the repo root with ``PYTHONPATH=src:. python tools/capture_golden.py``.
The committed ``tests/golden/engine_golden.json`` was captured against the
*pre-refactor* engine (commit with the monolithic ``run_pipeline``), so the
suite in ``tests/test_stages_golden.py`` proves the staged execution core is
bit-identical to the original.  Re-run this tool only when a change is
*intended* to alter model outputs, and say so in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.engine import EngineOptions, run_pipeline
from repro.core.incremental import DistributedCounter
from repro.core.spmd import count_spmd
from repro.mpi.topology import summit_gpu
from repro.telemetry import MetricRegistry

from tests.golden_cases import (
    COUNTER_CASES,
    ENGINE_CASES,
    GOLDEN_PATH,
    SPMD_CASES,
    TELEMETRY_CASES,
    batch_reads,
    build_cluster,
    golden_reads,
    snapshot_digest,
    spectrum_digest,
    summarize_counter,
    summarize_result,
)


def main() -> None:
    reads = golden_reads()
    golden: dict[str, dict] = {"engine": {}, "telemetry": {}, "counter": {}, "spmd": {}}

    for name, case in ENGINE_CASES.items():
        cluster = build_cluster(*case["cluster"])
        config = PipelineConfig(**case["config"])
        options = EngineOptions(**case["options"])
        result = run_pipeline(reads, cluster, config, backend=case["backend"], options=options)
        golden["engine"][name] = summarize_result(result)
        print(f"engine {name}: {result.spectrum.n_distinct} distinct, total_s={result.timing.total:.6f}")

    for name in TELEMETRY_CASES:
        case = ENGINE_CASES[name]
        cluster = build_cluster(*case["cluster"])
        config = PipelineConfig(**case["config"])
        registry = MetricRegistry()
        options = EngineOptions(telemetry=registry, **case["options"])
        run_pipeline(reads, cluster, config, backend=case["backend"], options=options)
        golden["telemetry"][name] = snapshot_digest(registry)
        print(f"telemetry {name}: {golden['telemetry'][name][:16]}")

    batches = batch_reads()
    for name, case in COUNTER_CASES.items():
        counter = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"]
        )
        for batch in batches:
            counter.add_reads(batch)
        golden["counter"][name] = summarize_counter(counter)
        print(f"counter {name}: {counter.total_kmers} kmers over {counter.n_batches} batches")

    for name, case in SPMD_CASES.items():
        spectrum = count_spmd(reads, case["n_ranks"], PipelineConfig(**case["config"]))
        golden["spmd"][name] = spectrum_digest(spectrum)
        print(f"spmd {name}: {spectrum.n_distinct} distinct")

    out = Path(GOLDEN_PATH)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
