"""Virtual-GPU substrate: device model, kernels, cost model, hash table."""

from .blocks import (
    MappingAnalysis,
    analyze_thread_mapping,
    block_imbalance_factor,
    per_thread_work,
    tail_efficiency,
    warp_divergence_factor,
)
from .costmodel import KernelCostModel, TrafficEstimate, staging_time
from .device import DeviceSpec, generic_gpu, v100
from .hashtable import EMPTY_KEY, DeviceHashTable, InsertStats
from .kernels import KernelStats, VirtualGPU

__all__ = [
    "MappingAnalysis",
    "analyze_thread_mapping",
    "warp_divergence_factor",
    "block_imbalance_factor",
    "tail_efficiency",
    "per_thread_work",
    "DeviceSpec",
    "v100",
    "generic_gpu",
    "KernelCostModel",
    "TrafficEstimate",
    "staging_time",
    "VirtualGPU",
    "KernelStats",
    "DeviceHashTable",
    "InsertStats",
    "EMPTY_KEY",
]
