"""Table III: load imbalance of k-mer vs supermer partitioning at 384 ranks.

Paper (H. sapiens 54X / C. elegans 40X on 384 GPUs):

    dataset        avg     kmer min/max      supermer(m=7) min/max   imbalance
    C. elegans     12M     12M / 14M         3M / 50M                1.16
    H. sapiens     255M    253M / 283M       41M / 606M              2.37

(The stated imbalance column is max/avg; the k-mer rows imply ~1.13-1.16.)
Key shapes: hash partitioning of k-mers is near-balanced; minimizer
partitioning is substantially skewed, worse on the more repetitive genome.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, write_report
from repro.dna.datasets import LARGE_DATASETS

NODES = 64  # 384 ranks, as in the paper's Table III


def test_table3_load_imbalance(benchmark, cache, results_dir):
    def experiment():
        out = {}
        for name in LARGE_DATASETS:
            kmer = cache.run(name, n_nodes=NODES, backend="gpu", mode="kmer")
            sup = cache.run(name, n_nodes=NODES, backend="gpu", mode="supermer", minimizer_len=7)
            out[name] = (kmer.load_stats(), sup.load_stats())
        return out

    stats = run_once(benchmark, experiment)

    rows = []
    for name in LARGE_DATASETS:
        k, s = stats[name]
        rows.append(
            [
                name,
                f"{k.mean_load:,.0f}",
                f"{k.min_load:,} / {k.max_load:,}",
                f"{s.min_load:,} / {s.max_load:,}",
                f"{k.imbalance:.2f}",
                f"{s.imbalance:.2f}",
            ]
        )
    text = format_table(
        ["dataset", "avg k-mers", "kmer min/max", "supermer m=7 min/max", "kmer imb", "supermer imb"],
        rows,
        title="Table III: per-rank received k-mers at 384 ranks (measured exactly)\n"
        "paper: kmer imbalance ~1.13-1.16; supermer imbalance up to 2.37 (H. sapiens)",
    )
    write_report("table3_load_imbalance", text, results_dir)

    ce_k, ce_s = stats["celegans40x"]
    hs_k, hs_s = stats["hsapiens54x"]
    # Hash partitioning near-balanced (paper ~1.13-1.16; sampling noise at
    # scaled size pushes it a little higher).
    assert ce_k.imbalance < 1.6 and hs_k.imbalance < 1.6
    # Minimizer partitioning clearly worse than hash partitioning.
    assert ce_s.imbalance > ce_k.imbalance
    assert hs_s.imbalance > hs_k.imbalance
    # The more repetitive genome suffers more (paper: 2.37 vs 1.16).
    assert hs_s.imbalance > 1.6
    # Supermer min/max spread is dramatic (paper: 3M-50M around 12M avg).
    assert hs_s.max_load > 3 * hs_s.min_load
