"""Process-pool execution substrate: fork-per-map workers, shm results.

Why fork-per-map instead of a persistent worker pool: the engine submits
*closures* over rank-private state — nested functions capturing shards,
tables, the stage context, objects holding locks — which are not
picklable, so tasks cannot be shipped to long-lived workers.  Forking at
``map`` time makes the parent's entire heap (input shards, send/receive
buffers, the composition) available to workers as copy-on-write pages
with zero serialization on the way in; only the *results* travel, and
they travel through one shared-memory segment per worker with
``(name, offset, dtype, shape)`` descriptors (:mod:`.shm`) plus a small
control pickle over a pipe.  The parent reassembles chunks in input
order, preserving :meth:`RankPool.map`'s bit-identity contract exactly.

Because workers are copy-on-write children, side effects inside mapped
closures never reach the parent.  Two side channels the engine's
closures rely on are therefore captured explicitly and replayed in
input order, keeping span and telemetry accumulation order-independent:

* **telemetry** — each worker swaps a fresh ``MetricRegistry`` into the
  active session slot (:func:`repro.telemetry.runtime.swap_active`),
  ships its dumped state, and the parent folds it in with
  :meth:`MetricRegistry.merge_state`.  The registry contract restricts
  worker-side operations to commutative ones (counter adds, max-gauges,
  histogram bucket adds), so the merged state is bit-identical to
  in-process accumulation.
* **wall spans** — each worker notes the spans its chunk appended to the
  (forked copy of the) recorder and ships them as plain tuples; the
  parent replays them through ``recorder.record`` while the enclosing
  stage region is still open.  Span *timestamps* are comparable across
  processes (``perf_counter`` is CLOCK_MONOTONIC system-wide on Linux),
  and consumers sort spans by start time, so replay order is not
  observable.

Everything else a closure mutates in place is the caller's problem by
contract (see :class:`RankPool`): the scheduler's count closures return
their tables, and stateful-plugin compositions fall back to the thread
substrate before reaching this module.

Requires ``os.fork`` (POSIX).  Workers exit via ``os._exit`` so they
never run the parent's ``atexit`` hooks or flush its buffers twice.
"""

from __future__ import annotations

import os
import pickle
import sys
import traceback
from multiprocessing import connection, resource_tracker
from typing import Any, Callable, Iterable

from ...telemetry import MetricRegistry
from ...telemetry.runtime import active, swap_active
from . import shm
from .pools import RankPool

__all__ = ["ProcessPool"]


class ProcessPool(RankPool):
    """Fork-per-map worker pool (the ``process`` substrate)."""

    kind = "process"
    in_process = False

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("ProcessPool needs >= 2 workers; use SequentialPool")
        if not hasattr(os, "fork"):
            raise ValueError("the process substrate requires os.fork (POSIX platforms)")
        self.workers = workers

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        recorder: Any = None,
    ) -> list[Any]:
        seq = list(items)
        self._record_map(len(seq))
        if len(seq) <= 1:
            return [fn(item) for item in seq]

        # Contiguous chunks, one worker each: chunk boundaries preserve
        # input order and chunk results concatenate back in order.
        n_chunks = min(self.workers, len(seq))
        bounds = [(len(seq) * i) // n_chunks for i in range(n_chunks + 1)]
        chunks = [seq[bounds[i] : bounds[i + 1]] for i in range(n_chunks)]

        # The resource tracker must pre-date the forks so every worker's
        # shared-memory registration lands in the tracker the parent
        # shares (see the shm module docstring for the race this avoids).
        resource_tracker.ensure_running()

        readers: list[connection.Connection] = []
        pids: list[int] = []
        for chunk in chunks:
            r_conn, w_conn = connection.Pipe(duplex=False)
            pid = os.fork()
            if pid == 0:
                r_conn.close()
                _worker_main(w_conn, fn, chunk, recorder)  # never returns
            w_conn.close()
            readers.append(r_conn)
            pids.append(pid)

        results: list[Any] = []
        failure: BaseException | None = None
        try:
            # Drain strictly in chunk order: each worker's payload is
            # consumed (and its sidecars replayed) before the next one's,
            # so accumulation order equals the sequential loop's.  After a
            # failure, later chunks are still drained — their segments
            # must be unlinked — but their results and sidecars are moot
            # (the sequential loop would never have reached them).
            for r_conn in readers:
                try:
                    blob = r_conn.recv_bytes()
                except EOFError:
                    if failure is None:
                        failure = RuntimeError("process-pool worker died without sending a result")
                    continue
                control, segment, descriptors = pickle.loads(blob)
                status, payload, sidecar = shm.unpack(control, segment, descriptors)
                if failure is not None:
                    continue
                _replay_sidecar(sidecar, recorder)
                if status == "err":
                    failure = payload
                else:
                    results.extend(payload)
        finally:
            for r_conn in readers:
                r_conn.close()
            for pid in pids:
                os.waitpid(pid, 0)
        if failure is not None:
            raise failure
        return results


def _worker_main(conn: connection.Connection, fn, chunk: list, recorder) -> None:
    """Body of one forked worker; exits the process, never returns."""
    try:
        capture = _SidecarCapture(recorder)
        try:
            output = [fn(item) for item in chunk]
            payload = ("ok", output, capture.collect())
        except BaseException as exc:  # ships to the parent, re-raised there
            payload = ("err", _shippable_error(exc), capture.collect())
        control, segment, descriptors = shm.pack(payload)
        conn.send_bytes(pickle.dumps((control, segment, descriptors)))
        conn.close()
    except BrokenPipeError:
        os._exit(1)  # parent already gave up on this chunk
    except BaseException:
        traceback.print_exc()
        sys.stderr.flush()
        os._exit(1)
    os._exit(0)


class _SidecarCapture:
    """Worker-side capture of the in-process side channels (see module doc)."""

    def __init__(self, recorder) -> None:
        self.recorder = recorder
        self.span_base = len(recorder._spans) if recorder is not None else 0
        self.registry: MetricRegistry | None = None
        if active() is not None:
            self.registry = MetricRegistry()
            swap_active(self.registry)

    def collect(self) -> tuple[list[tuple], dict | None]:
        spans: list[tuple] = []
        if self.recorder is not None:
            for span in self.recorder._spans[self.span_base :]:
                # SpanRecorder interleaves region spans; only the "work"
                # leaves this chunk's closures recorded travel back.
                if getattr(span, "cat", "work") != "work":
                    continue
                meta = dict(getattr(span, "meta", None) or {})
                spans.append((span.name, span.rank, span.start_s, span.end_s, meta))
        state = self.registry.dump_state() if self.registry is not None else None
        return spans, state


def _replay_sidecar(sidecar: tuple[list[tuple], dict | None], recorder) -> None:
    spans, state = sidecar
    if recorder is not None:
        for name, rank, start_s, end_s, meta in spans:
            if meta:
                recorder.record(name, rank, start_s, end_s, **meta)
            else:
                recorder.record(name, rank, start_s, end_s)
    if state is not None:
        registry = active()
        if registry is not None:
            registry.merge_state(state)


def _shippable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        detail = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        return RuntimeError(f"process-pool worker failed with unpicklable {type(exc).__name__}:\n{detail}")
