"""repro: reproduction of "Distributed-Memory k-mer Counting on GPUs" (IPDPS 2021).

A production-style Python library implementing the DEDUKT system of Nisa et
al.: the first GPU-accelerated distributed-memory k-mer counter, with the
supermer (minimizer-based) communication optimization.  GPUs and MPI are
simulated — a virtual-GPU execution model and a bulk-synchronous MPI
simulator with a Summit-calibrated cost model — while every algorithm
(2-bit codecs, MurmurHash3, minimizers, Algorithm 1, Algorithm 2, the
open-addressing counter) is implemented for real and validated exactly.

Quick start::

    from repro import count_distributed, paper_config, load_dataset

    reads = load_dataset("ecoli30x")
    result = count_distributed(reads, n_nodes=16, backend="gpu",
                               config=paper_config(mode="supermer"))
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    CountResult,
    EngineOptions,
    LoadStats,
    PhaseTiming,
    PipelineConfig,
    count_distributed,
    cpu_cluster,
    gpu_cluster,
    paper_config,
    run_paper_comparison,
    run_pipeline,
)
from .dna import DATASET_NAMES, ReadSet, load_dataset
from .kmers import KmerSpectrum, count_kmers_exact

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "count_distributed",
    "run_paper_comparison",
    "run_pipeline",
    "paper_config",
    "PipelineConfig",
    "EngineOptions",
    "CountResult",
    "PhaseTiming",
    "LoadStats",
    "gpu_cluster",
    "cpu_cluster",
    "ReadSet",
    "load_dataset",
    "DATASET_NAMES",
    "KmerSpectrum",
    "count_kmers_exact",
]
