"""The round scheduler: memory-bounded multi-round execution of a composition.

This is the single owner of the parse → exchange → count → merge loop.
Every execution surface drives it:

* :func:`repro.core.engine.run_pipeline` builds a composition and calls
  :meth:`RoundScheduler.run` (one-shot run, full :class:`CountResult`);
* :class:`repro.core.incremental.DistributedCounter` holds a
  :class:`PipelineState` and calls :meth:`RoundScheduler.run_batch` per
  read batch (streaming, checkpointable);
* the SPMD rank programs (:mod:`repro.core.stages.spmd`) reuse the same
  stage objects inside per-rank threads.

Execution is bulk-synchronous: every rank's phase runs to completion (as
real NumPy work), per-rank model times are derived from the work actually
performed, and the phase's bulk time is the max over ranks.  When the
modeled per-round working set exceeds device memory (``auto_rounds``), or
the config asks for ``n_rounds > 1``, each destination segment is split
evenly across rounds (Section III-A) and the exchange + count phases repeat.

Checkpoint/resume is a scheduler concern: :class:`PipelineState` carries
the persistent per-rank tables and accounting across batches and
serializes to the ``.npz`` checkpoint format (version 2: version 1's
table/timing layout plus insert statistics and the traffic record log,
so resumed runs reproduce an uninterrupted run's accounting exactly;
version-1 files still load, with zeroed stats and empty traffic).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

import numpy as np

from ...gpu.hashtable import DeviceHashTable, InsertStats
from ...dna.reads import ReadSet
from ...mpi.costmodel import CommCostModel
from ...mpi.stats import CollectiveRecord, TrafficStats
from ...mpi.topology import ClusterSpec
from ...telemetry import MetricRegistry, event, session
from ..config import PipelineConfig
from ..parallel import get_pool
from ..results import CountResult, PhaseTiming
from ..tracing import WallClockRecorder, recording_region
from .buffers import RankParse, add_link_seconds
from .context import EngineOptions, StageContext
from .registry import StageComposition

__all__ = ["RoundScheduler", "PipelineState"]

#: Version 2 adds ``insert_stats`` and the traffic record log to version
#: 1's tables/timing/volume layout; :meth:`PipelineState.load` accepts both.
_CHECKPOINT_VERSION = 2

#: Field order of the serialized :class:`InsertStats` vector.
_INSERT_STAT_FIELDS = (
    "n_instances",
    "n_distinct",
    "total_probes",
    "max_probe",
    "cas_conflicts",
    "rounds",
    "resizes",
)


@dataclass
class PipelineState:
    """Persistent cross-batch state: table partitions + accounting.

    This is what checkpoint/resume serializes; a scheduler folds each batch
    into it.  The ``.npz`` layout is checkpoint format version 2: version
    1's table/timing/volume layout (unchanged from the pre-stage-graph
    incremental counter) plus the cumulative :class:`InsertStats` and the
    :class:`TrafficStats` record log, so every accounting observable of a
    resumed run matches an uninterrupted run's.  Version-1 files (which
    never carried either) still load, with zeroed insert stats and empty
    traffic.
    """

    tables: list[DeviceHashTable]
    timing: PhaseTiming
    traffic: TrafficStats
    received_kmers: np.ndarray
    exchanged_items: int
    n_batches: int
    insert_stats: InsertStats
    # Set by the fused engine on first use: the SegmentedHashTable whose
    # per-rank views then populate ``tables``.  Reset on checkpoint load.
    fused_table: object | None = None

    @classmethod
    def fresh(cls, n_ranks: int, table_seed: int) -> "PipelineState":
        return cls(
            tables=[DeviceHashTable(64, seed=table_seed) for _ in range(n_ranks)],
            timing=PhaseTiming(0.0, 0.0, 0.0),
            traffic=TrafficStats(),
            received_kmers=np.zeros(n_ranks, dtype=np.int64),
            exchanged_items=0,
            n_batches=0,
            insert_stats=InsertStats.zero(),
        )

    def save(self, path: str | Path, *, k: int) -> Path:
        """Persist the state (tables + accounting) to an ``.npz``."""
        path = Path(path)
        payload: dict[str, np.ndarray] = {
            "version": np.array([_CHECKPOINT_VERSION]),
            "k": np.array([k]),
            "n_ranks": np.array([len(self.tables)]),
            "n_batches": np.array([self.n_batches]),
            "exchanged_items": np.array([self.exchanged_items]),
            "received": self.received_kmers,
            "timing": np.array([self.timing.parse, self.timing.exchange, self.timing.count]),
            "insert_stats": np.array(
                [getattr(self.insert_stats, f) for f in _INSERT_STAT_FIELDS], dtype=np.int64
            ),
            "traffic_n": np.array([len(self.traffic.records)]),
        }
        for i, rec in enumerate(self.traffic.records):
            payload[f"traffic_meta_{i}"] = np.array([rec.op, rec.label])
            payload[f"traffic_bytes_{i}"] = rec.bytes_matrix
            if rec.items_matrix is not None:
                payload[f"traffic_items_{i}"] = rec.items_matrix
        for r, table in enumerate(self.tables):
            keys, counts = table.items()
            payload[f"keys_{r}"] = keys
            payload[f"counts_{r}"] = counts
        np.savez_compressed(path, **payload)
        return path

    def load(self, path: str | Path, *, k: int, table_seed: int) -> None:
        """Restore state saved by :meth:`save` into this object.

        The state must match the checkpoint's cluster size and k; anything
        else is a configuration error and is rejected.
        """
        n_ranks = len(self.tables)
        with np.load(path) as data:
            version = int(data["version"][0])
            if version not in (1, _CHECKPOINT_VERSION):
                raise ValueError(f"{path}: unsupported checkpoint version")
            if int(data["k"][0]) != k:
                raise ValueError(f"{path}: checkpoint k={int(data['k'][0])} != config k={k}")
            if int(data["n_ranks"][0]) != n_ranks:
                raise ValueError(
                    f"{path}: checkpoint has {int(data['n_ranks'][0])} ranks, cluster has {n_ranks}"
                )
            self.tables = [DeviceHashTable(64, seed=table_seed) for _ in range(n_ranks)]
            self.fused_table = None
            for r in range(n_ranks):
                keys = data[f"keys_{r}"]
                counts = data[f"counts_{r}"]
                if keys.size:
                    # Checkpoints store each partition's items sorted by key
                    # (DeviceHashTable.items), so the dedup sort is redundant.
                    self.tables[r].insert_batch(keys, weights=counts, assume_unique=True)
            self.received_kmers = data["received"].astype(np.int64).copy()
            self.n_batches = int(data["n_batches"][0])
            self.exchanged_items = int(data["exchanged_items"][0])
            t = data["timing"]
            self.timing = PhaseTiming(parse=float(t[0]), exchange=float(t[1]), count=float(t[2]))
            # Accounting is always reset — any stats accumulated in this
            # object before the load belong to a different run, and a
            # version-1 file simply has nothing to restore.
            self.insert_stats = InsertStats.zero()
            self.traffic = TrafficStats()
            if version >= 2:
                self.insert_stats = InsertStats(
                    **{
                        field: int(value)
                        for field, value in zip(_INSERT_STAT_FIELDS, data["insert_stats"])
                    }
                )
                for i in range(int(data["traffic_n"][0])):
                    op, label = (str(s) for s in data[f"traffic_meta_{i}"])
                    items_key = f"traffic_items_{i}"
                    self.traffic.records.append(
                        CollectiveRecord(
                            op=op,
                            label=label,
                            bytes_matrix=data[f"traffic_bytes_{i}"].astype(np.int64),
                            items_matrix=(
                                data[items_key].astype(np.int64) if items_key in data else None
                            ),
                        )
                    )


class RoundScheduler:
    """Drives one stage composition through rounds on a rank pool."""

    def __init__(
        self,
        cluster: ClusterSpec,
        config: PipelineConfig,
        composition: StageComposition,
        opts: EngineOptions,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.comp = composition
        self.opts = opts
        self.comm_model = CommCostModel(cluster)
        self._prepared = False
        self._fused_impl = None
        self._fused_checked = False
        self._spill_impl = None
        self._spill_checked = False
        self._process_fallback_announced = False

    # -- shared helpers ------------------------------------------------------

    def _shard(self, reads: ReadSet) -> list[ReadSet]:
        p = self.cluster.n_ranks
        if self.opts.shard_mode == "bytes":
            return reads.shard_bytes(p, overlap=self.config.k - 1)
        return reads.shard(p)

    def _prepare_plugins(self, reads: ReadSet) -> None:
        """One-time plugin pre-pass (first batch for streamed inputs)."""
        if self._prepared:
            return
        self._prepared = True
        for plugin in self.comp.plugins:
            plugin.prepare(reads, self.config, self.cluster, self.opts)

    def _fused(self):
        """The fused pipeline for this scheduler, or ``None`` (staged path).

        Resolved once: ``opts.fused`` (or ``REPRO_FUSED``) must be on AND the
        composition must consist of the standard stage types the fused path
        re-implements.  A fused request over a custom composition falls back
        to the staged scheduler with an event, never an error — results are
        identical either way.
        """
        if not self._fused_checked:
            self._fused_checked = True
            from .fused import FusedPipeline, resolve_fused, supports_fusion

            if resolve_fused(self.opts.fused):
                if supports_fusion(self.comp):
                    self._fused_impl = FusedPipeline(self)
                else:
                    event(
                        "engine.fused.fallback",
                        subsystem="engine",
                        backend=self.comp.backend,
                        reason="composition has custom stages; using staged path",
                    )
        return self._fused_impl

    def _spill(self):
        """The out-of-core pipeline for this scheduler, or ``None``.

        Resolved once: ``opts.spill_dir`` must be set AND the composition's
        exchange/merge must be the standard classes whose semantics the
        spill path mirrors (:func:`repro.core.stages.spill.supports_spill`).
        A simultaneous fused request selects the blocked fused×spill
        composition when every stage is the standard fusable type;
        otherwise the staged spill loop runs (with the usual fused-fallback
        event).  A spill request over a custom exchange/merge composition
        falls back to the in-memory scheduler with an event, never an
        error.  Results are identical on every path.
        """
        if not self._spill_checked:
            self._spill_checked = True
            if self.opts.spill_dir is not None:
                from .fused import resolve_fused, supports_fusion
                from .spill import FusedSpillPipeline, SpillPipeline, supports_spill

                fused_on = resolve_fused(self.opts.fused)
                if not supports_spill(self.comp):
                    event(
                        "engine.spill.fallback",
                        subsystem="engine",
                        backend=self.comp.backend,
                        reason="composition has custom exchange/merge stages; counting in memory",
                    )
                elif fused_on and supports_fusion(self.comp):
                    self._spill_impl = FusedSpillPipeline(self)
                else:
                    if fused_on:
                        event(
                            "engine.fused.fallback",
                            subsystem="engine",
                            backend=self.comp.backend,
                            reason="composition has custom stages; spilling via the staged loop",
                        )
                    self._spill_impl = SpillPipeline(self)
        return self._spill_impl

    def _pool(self):
        """The resolved execution substrate for this scheduler's runs.

        Compositions with stateful count/merge plugins (e.g. the bloom
        prefilter, whose filter state mutates inside the per-rank count
        closures and is read again at merge time) need those side effects
        to happen in the driving process, so a process substrate falls
        back to an equally wide thread pool with an event.  Results are
        bit-identical either way — the thread pool honours the same
        determinism contract — only the execution placement changes.
        """
        pool = get_pool(self.opts.parallel)
        if not pool.in_process and (
            getattr(self.comp.count, "plugins", ()) or getattr(self.comp.merge, "plugins", ())
        ):
            if not self._process_fallback_announced:
                self._process_fallback_announced = True
                event(
                    "engine.process.fallback",
                    subsystem="engine",
                    backend=self.comp.backend,
                    reason="composition has stateful plugins; using the thread substrate",
                )
            pool = get_pool(f"thread:{pool.workers}")
        return pool

    def _context(
        self,
        pool,
        stats: TrafficStats,
        recorder: WallClockRecorder | None,
        reg: MetricRegistry | None,
        verify: bool | None = None,
    ) -> StageContext:
        return StageContext(
            config=self.config,
            cluster=self.cluster,
            opts=self.opts,
            backend=self.comp.backend,
            pool=pool,
            comm_model=self.comm_model,
            stats=stats,
            recorder=recorder,
            registry=reg,
            verify=verify,
        )

    # -- one-shot run (the classic engine surface) ---------------------------

    def run(self, reads: ReadSet) -> CountResult:
        """Run the composition over ``reads`` and return its full result.

        When ``opts.telemetry`` is set, the registry is installed as the
        active telemetry session for the duration of the run — every layer
        underneath (collectives, hash tables, kernels, worker pools) feeds
        it — and the scheduler adds its own phase/rank/round metrics plus
        wall-clock metrics afterwards.  Model metrics are bit-identical
        across execution engines; only families registered as wall metrics
        may differ.
        """
        opts = self.opts
        reg = opts.telemetry
        recorder = opts.span_recorder
        if reg is not None and recorder is None:
            recorder = WallClockRecorder()  # wall metrics need spans even if the caller kept none
        self._prepare_plugins(reads)
        event(
            "engine.run.start",
            subsystem="engine",
            backend=self.comp.backend,
            mode=self.config.mode,
            k=self.config.k,
            ranks=self.cluster.n_ranks,
            reads=reads.n_reads,
        )
        spill = self._spill()
        strategy = (
            spill.strategy
            if spill is not None
            else ("fused" if self._fused() is not None else "staged")
        )
        if opts.table_dir is not None and strategy in ("staged", "spill"):
            # The mmap-backed table is a SegmentedHashTable feature; the
            # per-rank DeviceHashTables of these strategies stay resident.
            event(
                "engine.table.fallback",
                subsystem="engine",
                backend=self.comp.backend,
                reason="table_dir applies to the fused segmented table; per-rank tables stay resident",
            )
        ctx = session(reg) if reg is not None else nullcontext()
        with ctx, recording_region(
            recorder,
            "run",
            cat="run",
            strategy=strategy,
            backend=self.comp.backend,
            mode=self.config.mode,
            ranks=self.cluster.n_ranks,
        ):
            result = self._run_once(reads, recorder, reg)
        if reg is not None:
            _record_run_metrics(reg, result, recorder)
        event(
            "engine.run.done",
            subsystem="engine",
            backend=self.comp.backend,
            total_model_s=round(result.timing.total, 6),
            exchanged_items=result.exchanged_items,
            distinct=result.spectrum.n_distinct,
            rounds=result.n_rounds_used,
        )
        return result

    def _run_once(
        self, reads: ReadSet, recorder: WallClockRecorder | None, reg: MetricRegistry | None
    ) -> CountResult:
        spill = self._spill()
        if spill is not None:
            return spill.run_once(reads, recorder, reg)
        fused = self._fused()
        if fused is not None:
            return fused.run_once(reads, recorder, reg)
        comp = self.comp
        config = self.config
        opts = self.opts
        p = self.cluster.n_ranks
        mult = opts.work_multiplier
        stats = TrafficStats()
        pool = self._pool()
        sctx = self._context(pool, stats, recorder, reg)

        # ---- input partitioning (the paper's parallel I/O; Section IV-D) ----
        shards = self._shard(reads)

        # ---- phase 1: parse (& build supermers) per rank ----
        # Each rank's parse touches only its own shard and builds rank-private
        # outputs, so the pool may run ranks concurrently; results come back in
        # rank order and are bit-identical to the sequential loop.
        def _parse_one(r: int) -> RankParse:
            t0 = perf_counter()
            out = comp.substrate.parse_rank(shards[r], comp.parse, comp.partition, sctx)
            if recorder is not None:
                recorder.record("parse", r, t0, perf_counter())
            return out

        with recording_region(recorder, "parse", cat="stage"):
            parsed: list[RankParse] = pool.map(_parse_one, range(p), recorder=recorder)
        t_parse = max(pr.time_s for pr in parsed)
        total_parsed_kmers = sum(pr.n_kmers_parsed for pr in parsed)

        # ---- phases 2+3: exchange and count, possibly in multiple rounds ----
        wire = sctx.wire_bytes
        supermer_mode = sctx.supermer_mode
        n_rounds = max(config.n_rounds, _rounds_for_memory(parsed, p, wire, mult, opts, comp.backend))
        tables = [
            DeviceHashTable(
                capacity_hint=max(64, pr.n_kmers_parsed // max(p, 1) + 16), seed=config.table_seed
            )
            for pr in parsed
        ]
        received_kmers = np.zeros(p, dtype=np.int64)
        per_rank_count = np.zeros(p, dtype=np.float64)
        t_exchange = 0.0
        t_alltoallv = 0.0
        staging_total = 0.0
        link_totals: dict[str, float] = {}
        counts_matrix_total = np.zeros((p, p), dtype=np.int64)
        insert_total = InsertStats.zero()

        for rnd in range(n_rounds):
            with recording_region(recorder, f"round{rnd}", cat="round", round=rnd):
                round_send = [_round_slice(pr, rnd, n_rounds) for pr in parsed]
                send_data = [rs[0] for rs in round_send]
                send_lengths = [rs[1] for rs in round_send] if supermer_mode else None
                send_counts = [rs[2] for rs in round_send]
                label = f"{config.mode}-exchange" + (f"-round{rnd}" if n_rounds > 1 else "")
                exch_name = "exchange" + (f"-round{rnd}" if n_rounds > 1 else "")
                n_traffic_before = len(stats.records)
                with recording_region(recorder, "exchange", cat="stage", round=rnd) as ereg:
                    t0x = perf_counter()
                    outcome = comp.exchange.exchange(send_data, send_lengths, send_counts, label, sctx)
                    if recorder is not None:
                        recorder.record(exch_name, 0, t0x, perf_counter())
                    if ereg is not None:
                        # Causal link: the traffic records this collective appended.
                        ereg.note(
                            label=label,
                            traffic_records=[n_traffic_before, len(stats.records)],
                            items=int(outcome.counts_matrix.sum()),
                            model_seconds=outcome.seconds,
                            link_seconds=dict(outcome.link_seconds),
                        )
                counts_matrix_total += outcome.counts_matrix
                t_exchange += outcome.seconds
                t_alltoallv += outcome.alltoallv_seconds
                staging_total += outcome.staging_seconds
                add_link_seconds(link_totals, outcome.link_seconds)
                if reg is not None:
                    backend = comp.backend
                    reg.counter("exchange_rounds_total", "Exchange/count rounds executed", engine=backend).inc()
                    reg.counter(
                        "exchange_model_seconds_total",
                        "Modeled exchange seconds (overhead + network + staging)",
                        engine=backend,
                        round=rnd,
                    ).inc(outcome.seconds)
                    reg.counter(
                        "alltoallv_model_seconds_total",
                        "Modeled MPI_Alltoallv routine seconds",
                        engine=backend,
                        round=rnd,
                    ).inc(outcome.alltoallv_seconds)
                    reg.counter(
                        "staging_model_seconds_total",
                        "Modeled host<->device staging seconds",
                        engine=backend,
                        round=rnd,
                    ).inc(outcome.staging_seconds)
                    reg.counter(
                        "exchange_items_round_total",
                        "Items exchanged per round",
                        engine=backend,
                        round=rnd,
                    ).inc(int(outcome.counts_matrix.sum()))

                # ---- count phase ----
                # Rank r's count touches only recv_data[r] and its own table
                # partition, so ranks run concurrently; the stats reduction below
                # stays in rank order (pool.map returns results in input order) so
                # the combined InsertStats is identical to the sequential engine's.
                # The closure returns the table alongside the outcome: an
                # out-of-process worker mutates a copy-on-write clone, so the
                # grown table must travel back (a no-op reassignment in-process).
                count_label = "count" + (f"-round{rnd}" if n_rounds > 1 else "")
                recv_data, recv_lengths = outcome.recv_data, outcome.recv_lengths

                def _count_one(r: int):
                    lengths_r = recv_lengths[r] if recv_lengths is not None else None
                    t0 = perf_counter()
                    out = comp.substrate.count_rank(r, recv_data[r], lengths_r, tables[r], comp.count, sctx)
                    if recorder is not None:
                        recorder.record(count_label, r, t0, perf_counter())
                    return out, tables[r]

                with recording_region(recorder, "count", cat="stage", round=rnd):
                    counted = pool.map(_count_one, range(p), recorder=recorder)
                for r, (co, table) in enumerate(counted):
                    tables[r] = table
                    per_rank_count[r] += co.time_s
                    received_kmers[r] += co.n_instances
                    insert_total = insert_total.combined(co.insert_stats)

        t_count = float(per_rank_count.max()) if p else 0.0

        # ---- merge the partitioned global table into one spectrum ----
        with recording_region(recorder, "merge", cat="stage"):
            t0m = perf_counter()
            spectrum = comp.merge.merge_tables(tables, config.k)
            if recorder is not None:
                recorder.record("merge", 0, t0m, perf_counter())
        if comp.conserves_kmers and spectrum.n_total != total_parsed_kmers:
            raise AssertionError(
                f"pipeline lost k-mers: parsed {total_parsed_kmers}, counted {spectrum.n_total}"
            )

        exchanged_items = int(counts_matrix_total.sum())
        supermer_bases = sum(pr.supermer_bases for pr in parsed)
        n_supermers = sum(pr.n_supermers for pr in parsed)
        if reg is not None:
            backend = comp.backend
            # Recorded here (not in the hash table) because only the engine knows
            # the rank index; plain Gauge.set is safe from this ordered loop.
            for r, table in enumerate(tables):
                reg.gauge("hashtable_entries", "Distinct keys per rank partition", rank=r).set(
                    table.n_entries
                )
                reg.gauge("hashtable_load_factor", "Final load factor per rank", rank=r).set(
                    table.load_factor
                )
            reg.counter("kmers_parsed_total", "k-mer instances parsed", engine=backend).inc(
                total_parsed_kmers
            )
            if n_supermers:
                reg.counter("supermers_total", "Supermers built", engine=backend).inc(n_supermers)
                reg.counter("supermer_bases_total", "Bases covered by supermers", engine=backend).inc(
                    supermer_bases
                )
        return CountResult(
            config=config,
            cluster=self.cluster,
            backend=comp.backend,
            spectrum=spectrum,
            timing=PhaseTiming(parse=t_parse, exchange=t_exchange, count=t_count),
            per_rank_parse=np.array([pr.time_s for pr in parsed]),
            per_rank_count=per_rank_count,
            received_kmers=received_kmers,
            exchanged_items=exchanged_items,
            exchanged_bytes=int(exchanged_items * wire),
            counts_matrix=counts_matrix_total,
            work_multiplier=mult,
            traffic=stats,
            insert_stats=insert_total,
            mean_supermer_length=(supermer_bases / n_supermers) if n_supermers else 0.0,
            staging_seconds=staging_total,
            alltoallv_seconds=t_alltoallv,
            link_seconds=tuple(link_totals.items()),
            n_rounds_used=n_rounds,
        )

    # -- streamed batches (the incremental counter surface) ------------------

    def run_batch(self, reads: ReadSet, state: PipelineState) -> PhaseTiming:
        """Fold one batch of reads into ``state``; returns the batch timing.

        Single-round by construction (streamed batches are already small);
        the exchange skips the checksum verification pass, matching the
        original incremental counter exactly.  When ``opts.span_recorder``
        is set (``trace=`` / ``--trace``), the batch records a ``batch{n}``
        region with the same stage/work structure as the one-shot run.
        """
        recorder = self.opts.span_recorder
        if reads.offsets.size:
            # Batches are single-round, so the budget cannot split work —
            # but a budget below one received item is invalid everywhere
            # and the streamed surface must report the same floor the
            # one-shot run does.
            wire = (
                self.config.supermer_wire_bytes
                if self.config.mode == "supermer"
                else self.config.kmer_wire_bytes
            )
            _check_host_budget_floor(wire, self.opts.work_multiplier, self.opts)
        with recording_region(
            recorder, f"batch{state.n_batches}", cat="batch", batch=state.n_batches
        ):
            spill = self._spill()
            if spill is not None:
                return spill.run_batch(reads, state)
            fused = self._fused()
            if fused is not None:
                return fused.run_batch(reads, state)
            return self._run_batch_staged(reads, state, recorder)

    def _run_batch_staged(
        self, reads: ReadSet, state: PipelineState, recorder: WallClockRecorder | None
    ) -> PhaseTiming:
        comp = self.comp
        config = self.config
        p = self.cluster.n_ranks
        pool = self._pool()
        sctx = self._context(pool, state.traffic, recorder, None, verify=False)

        # Plugins prepare before sharding, exactly as `run` does: a plugin
        # whose `prepare` influences partitioning must see the same state on
        # the streamed path as on the one-shot path.
        self._prepare_plugins(reads)
        shards = self._shard(reads)

        # Same parallel rank-execution contract as the one-shot run: pool.map
        # keeps rank order, each closure touches rank-private state only,
        # so batches fold in bit-identically to the sequential loop.
        def _parse_one(r: int) -> RankParse:
            t0 = perf_counter()
            out = comp.substrate.parse_rank(shards[r], comp.parse, comp.partition, sctx)
            if recorder is not None:
                recorder.record("parse", r, t0, perf_counter())
            return out

        with recording_region(recorder, "parse", cat="stage"):
            parsed = pool.map(_parse_one, range(p), recorder=recorder)
        t_parse = max(pr.time_s for pr in parsed)

        supermer_mode = sctx.supermer_mode
        label = f"{config.mode}-batch{state.n_batches}"
        n_traffic_before = len(state.traffic.records)
        with recording_region(recorder, "exchange", cat="stage") as ereg:
            t0x = perf_counter()
            outcome = comp.exchange.exchange(
                [pr.data for pr in parsed],
                [pr.lengths for pr in parsed] if supermer_mode else None,
                [pr.counts for pr in parsed],
                label,
                sctx,
            )
            if recorder is not None:
                recorder.record("exchange", 0, t0x, perf_counter())
            if ereg is not None:
                ereg.note(
                    label=label,
                    traffic_records=[n_traffic_before, len(state.traffic.records)],
                    items=int(outcome.counts_matrix.sum()),
                    model_seconds=outcome.seconds,
                )
        recv_data, recv_lengths = outcome.recv_data, outcome.recv_lengths

        # As in the one-shot run: the mutated table partition travels back
        # with the outcome so out-of-process workers fold in correctly.
        def _count_one(r: int):
            lengths_r = recv_lengths[r] if recv_lengths is not None else None
            t0 = perf_counter()
            out = comp.substrate.count_rank(r, recv_data[r], lengths_r, state.tables[r], comp.count, sctx)
            if recorder is not None:
                recorder.record("count", r, t0, perf_counter())
            return out, state.tables[r]

        per_rank_count = np.zeros(p, dtype=np.float64)
        with recording_region(recorder, "count", cat="stage"):
            counted = pool.map(_count_one, range(p), recorder=recorder)
        for r, (co, table) in enumerate(counted):
            state.tables[r] = table
            per_rank_count[r] = co.time_s
            state.received_kmers[r] += co.n_instances
            state.insert_stats = state.insert_stats.combined(co.insert_stats)
        batch_timing = PhaseTiming(
            parse=t_parse, exchange=outcome.seconds, count=float(per_rank_count.max()) if p else 0.0
        )
        state.timing = state.timing.add(batch_timing)
        state.exchanged_items += int(outcome.counts_matrix.sum())
        state.n_batches += 1
        return batch_timing


def _record_run_metrics(
    reg: MetricRegistry, result: CountResult, recorder: WallClockRecorder | None
) -> None:
    """Engine-level metrics derived from the finished result.

    Everything here is computed from the deterministic result payload (so
    sequential and parallel engines record identical values), except the
    ``wall=True`` families, which come from host wall-clock spans.
    """
    backend = result.backend
    t = result.timing
    for phase, secs in (("parse", t.parse), ("exchange", t.exchange), ("count", t.count)):
        reg.counter(
            "phase_model_seconds_total",
            "Bulk-synchronous phase time (max over ranks)",
            engine=backend,
            phase=phase,
        ).inc(secs)
    for r in range(result.cluster.n_ranks):
        reg.gauge(
            "rank_phase_model_seconds", "Per-rank modeled phase seconds", engine=backend, phase="parse", rank=r
        ).set(float(result.per_rank_parse[r]))
        reg.gauge(
            "rank_phase_model_seconds", "Per-rank modeled phase seconds", engine=backend, phase="count", rank=r
        ).set(float(result.per_rank_count[r]))
        reg.gauge("rank_received_kmers", "k-mer instances counted per rank", rank=r).set(
            int(result.received_kmers[r])
        )
    loads = result.load_stats()
    reg.gauge("load_imbalance", "max/mean received k-mers (Table III)", engine=backend).set(loads.imbalance)
    reg.counter("exchange_items_total", "Items routed through the exchange", engine=backend).inc(
        result.exchanged_items
    )
    reg.counter("exchange_bytes_total", "Wire bytes at measured scale", engine=backend).inc(
        result.exchanged_bytes
    )
    if recorder is not None and len(recorder):
        for name in recorder.phases():
            reg.counter(
                "wall_phase_seconds_total", "Host wall-clock rank-seconds per phase", wall=True, phase=name
            ).inc(recorder.busy_seconds(name))
        reg.gauge("wall_busy_seconds", "Total host rank-seconds", wall=True).set(recorder.busy_seconds())
        reg.gauge("wall_elapsed_seconds", "Host wall window of the run", wall=True).set(
            recorder.elapsed_seconds()
        )
        reg.gauge("wall_overlap_factor", "Achieved rank concurrency", wall=True).set(
            recorder.overlap_factor()
        )


def _round_slice(pr: RankParse, rnd: int, n_rounds: int) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Slice a rank's destination-ordered buffer for round ``rnd``.

    Each destination segment is split evenly across rounds (Section III-A:
    when the data exceeds memory limits "the computation and communication
    may proceed in multiple rounds").  Preserves destination order within
    the round.
    """
    if n_rounds == 1:
        return pr.data, pr.lengths, pr.counts
    p = pr.counts.shape[0]
    offsets = np.concatenate(([0], np.cumsum(pr.counts)))
    pieces: list[np.ndarray] = []
    lpieces: list[np.ndarray] = []
    counts = np.zeros(p, dtype=np.int64)
    for dst in range(p):
        seg_start, seg_end = offsets[dst], offsets[dst + 1]
        seg_len = seg_end - seg_start
        lo = seg_start + (seg_len * rnd) // n_rounds
        hi = seg_start + (seg_len * (rnd + 1)) // n_rounds
        counts[dst] = hi - lo
        pieces.append(pr.data[lo:hi])
        if pr.lengths is not None:
            lpieces.append(pr.lengths[lo:hi])
    data = np.concatenate(pieces) if pieces else pr.data[:0]
    lengths = (np.concatenate(lpieces) if lpieces else None) if pr.lengths is not None else None
    return data, lengths, counts


def _rounds_for_memory(
    parsed: list[RankParse], p: int, wire: int, mult: float, opts: EngineOptions, backend: str
) -> int:
    """Rounds needed so every rank's round working set fits its memory budgets.

    Models Section III-A: "Depending on the total size of the input,
    relative to software limits (approximating available memory), the
    computation and communication may proceed in multiple rounds."  The
    per-rank working set of one round is its received wire buffer plus the
    growing hash table (keys + counts per distinct key, bounded by received
    instances), evaluated at full (multiplied) scale.
    """
    recv_items = np.zeros(p, dtype=np.float64)
    for pr in parsed:
        recv_items += pr.counts
    return _rounds_for_recv_items(recv_items, wire, mult, opts, backend)


def _rounds_for_recv_items(
    recv_items: np.ndarray, wire: int, mult: float, opts: EngineOptions, backend: str
) -> int:
    """Core of :func:`_rounds_for_memory` on per-rank received-item totals.

    Shared by every execution path — the fused engine derives
    ``recv_items`` from the counts-matrix column sums (the same values,
    exactly, since the int64 column sums convert to float64 losslessly
    below 2**53), and the spill path calls it with the staged inputs — so
    ``n_rounds_used`` is bit-identical across paths.  Two independent
    budgets apply: the modeled device-HBM budget (``auto_rounds``, GPU
    substrate only, as before) and the *host* budget
    (``opts.host_memory_budget``, any substrate), which bounds one round's
    per-rank host working set: the received partition, its extraction
    copy, and the table growth it can cause.
    """
    worst = float(recv_items.max(initial=0.0)) * mult
    rounds = 1
    if opts.auto_rounds and backend == "gpu":
        # Wire buffer + staged copy + table entries (16 B/slot at ~0.7 load).
        bytes_per_item = wire * 2 + 16 / 0.7
        budget = opts.device.hbm_bytes * opts.memory_budget_fraction
        rounds = max(rounds, int(np.ceil(worst * bytes_per_item / budget)))
    if opts.host_memory_budget is not None:
        # Host-side working set per item: the partition buffer and its
        # extraction copy, the unpacked 8-byte key stream, and the table
        # slots (16 B each at ~0.7 target load) the round may add.
        host_bytes_per_item = wire * 2 + 8.0 + 16 / 0.7
        if worst > 0:
            _check_host_budget_floor(wire, mult, opts)
        rounds = max(rounds, int(np.ceil(worst * host_bytes_per_item / opts.host_memory_budget)))
    return rounds


def _check_host_budget_floor(wire: int, mult: float, opts: EngineOptions) -> None:
    """Reject a host budget smaller than one received item's working set.

    Rounds cannot shrink the per-round set below one item per rank, so a
    sub-item budget would just degenerate into floods of zero-item
    rounds.  The floor is config-derived (wire size and multiplier, no
    data needed), so the streamed batch path validates it up front even
    though batches are single-round by construction.
    """
    if opts.host_memory_budget is None:
        return
    host_bytes_per_item = wire * 2 + 8.0 + 16 / 0.7
    floor = int(np.ceil(host_bytes_per_item * mult))
    if opts.host_memory_budget < floor:
        raise ValueError(
            f"host_memory_budget={opts.host_memory_budget} is below the working-set "
            f"floor of one received item: {floor} bytes "
            f"({host_bytes_per_item:.1f} B/item at work_multiplier {mult:g})"
        )
