"""Approximate k-mer counting: Count-Min sketch backend.

The paper's related work highlights space-frugal counting structures
(Squeakr's counting quotient filter [24], Bloom-filter counters [20]) as
the main alternative when exact tables do not fit.  This module provides
the classic Count-Min sketch in vectorized form: a ``depth x width``
counter matrix, one MurmurHash3-derived row position per key per row;
queries return the row-minimum, which *never underestimates* and
overestimates by at most ``epsilon * total_count`` with probability
``1 - delta`` when sized via :meth:`CountMinSketch.for_error`.

Useful as a memory-bounded first pass (heavy-hitter detection, abundance
screening) before exact distributed counting of the survivors.
"""

from __future__ import annotations

import numpy as np

from ..hashing.murmur3 import hash_kmers_batch

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Vectorized Count-Min sketch over uint64 keys."""

    def __init__(self, width: int, depth: int = 4, *, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        # Power-of-two width keeps position computation a mask.
        self.width = 1
        while self.width < width:
            self.width *= 2
        self.depth = depth
        self.seed = seed
        self._mask = np.uint64(self.width - 1)
        self.table = np.zeros((depth, self.width), dtype=np.int64)
        self.total = 0

    @classmethod
    def for_error(cls, epsilon: float, delta: float = 0.01, *, seed: int = 0) -> "CountMinSketch":
        """Size the sketch for additive error ``epsilon * total`` with
        probability ``1 - delta`` (standard CM bounds: w = e/eps, d = ln 1/delta)."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("need 0 < epsilon, delta < 1")
        width = int(np.ceil(np.e / epsilon))
        depth = max(1, int(np.ceil(np.log(1.0 / delta))))
        return cls(width, depth, seed=seed)

    def _positions(self, keys: np.ndarray, row: int) -> np.ndarray:
        return (hash_kmers_batch(keys, seed=self.seed + 104729 * (row + 1)) & self._mask).astype(np.int64)

    def add(self, keys: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Add a batch of key observations (optionally weighted)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        if weights is None:
            w = np.ones(keys.shape[0], dtype=np.int64)
        else:
            w = np.ascontiguousarray(weights, dtype=np.int64)
            if w.shape != keys.shape:
                raise ValueError("weights must parallel keys")
            if w.size and int(w.min()) < 0:
                raise ValueError("weights must be non-negative")
        for row in range(self.depth):
            np.add.at(self.table[row], self._positions(keys, row), w)
        self.total += int(w.sum())

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Estimated counts (row-minimum; never an underestimate)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        est = np.full(keys.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
        for row in range(self.depth):
            np.minimum(est, self.table[row][self._positions(keys, row)], out=est)
        return est

    def heavy_hitters(self, keys: np.ndarray, threshold: int) -> np.ndarray:
        """Distinct keys whose estimated count reaches ``threshold``.

        No false negatives (estimates never undercount); false positives
        bounded by the sketch error.
        """
        uniq = np.unique(np.ascontiguousarray(keys, dtype=np.uint64))
        return uniq[self.query(uniq) >= threshold]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the counter matrix."""
        return int(self.table.nbytes)

    def error_bound(self) -> float:
        """Additive error ceiling ``(e / width) * total`` (per query, w.h.p.)."""
        return np.e / self.width * self.total
