"""k-mer machinery: extraction, minimizers, supermers, spectra, and
downstream consumers (databases, genomic profiling, de Bruijn graphs)."""

from .comparison import MinHashSketch, SpectrumComparison, compare_spectra, containment, jaccard, mash_distance
from .debruijn import DebruijnStats, build_debruijn, graph_stats, unitigs
from .extract import KmerWindows, extract_kmers, extract_kmers_scalar, window_values
from .genomics import SpectrumProfile, coverage_peak, histogram_valley, profile_spectrum
from .kmerdb import read_kmerdb, read_kmerdb_header, read_tsv, write_kmerdb, write_tsv
from .minimizers import KmerMinimizers, minimizer_scalar, minimizers_for_windows
from .spectrum import KmerSpectrum, count_kmers_exact, spectrum_from_counts
from .supermers import (
    SUPERMER_LENGTH_BYTES,
    SUPERMER_WORD_BYTES,
    SupermerBatch,
    build_supermers,
    build_supermers_scalar,
    extract_kmers_from_packed,
    max_window_for,
)

__all__ = [
    "KmerWindows",
    "window_values",
    "extract_kmers",
    "extract_kmers_scalar",
    "KmerMinimizers",
    "minimizers_for_windows",
    "minimizer_scalar",
    "SupermerBatch",
    "build_supermers",
    "build_supermers_scalar",
    "extract_kmers_from_packed",
    "max_window_for",
    "SUPERMER_LENGTH_BYTES",
    "SUPERMER_WORD_BYTES",
    "KmerSpectrum",
    "count_kmers_exact",
    "spectrum_from_counts",
    "write_kmerdb",
    "read_kmerdb",
    "read_kmerdb_header",
    "write_tsv",
    "read_tsv",
    "SpectrumProfile",
    "profile_spectrum",
    "coverage_peak",
    "histogram_valley",
    "build_debruijn",
    "unitigs",
    "graph_stats",
    "DebruijnStats",
    "jaccard",
    "containment",
    "mash_distance",
    "compare_spectra",
    "SpectrumComparison",
    "MinHashSketch",
]
