"""Golden differential suite: the staged pipeline vs the pre-refactor engine.

``tests/golden/engine_golden.json`` was recorded by
``tools/capture_golden.py`` against the monolithic pre-refactor engine
(commit 766892f).  These tests replay the same case matrix on the staged
execution core and require every bit-identity-relevant field to match
exactly: spectrum hashes, model phase timings, per-rank arrays, traffic
accounting, insert statistics, and the telemetry model-metric snapshot.

Also proves checkpoint/resume through the round scheduler is equivalent to
an uninterrupted streamed run (the scheduler now owns checkpointing).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.config import PipelineConfig
from repro.core.engine import EngineOptions, run_pipeline
from repro.core.incremental import DistributedCounter
from repro.core.spmd import count_spmd
from repro.mpi.topology import summit_gpu
from repro.telemetry import MetricRegistry

from .golden_cases import (
    COUNTER_CASES,
    ENGINE_CASES,
    GOLDEN_PATH,
    SPMD_CASES,
    TELEMETRY_CASES,
    batch_reads,
    build_cluster,
    golden_reads,
    snapshot_digest,
    spectrum_digest,
    summarize_counter,
    summarize_result,
)

pytestmark = pytest.mark.engines


@pytest.fixture(scope="module")
def golden() -> dict:
    path = Path(__file__).resolve().parent.parent / GOLDEN_PATH
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def reads():
    return golden_reads()


def _assert_same(expected: dict, actual: dict, context: str) -> None:
    for key in expected:
        assert actual[key] == expected[key], f"{context}: field {key!r} diverged from golden"


class TestEngineGolden:
    @pytest.mark.parametrize("name", sorted(ENGINE_CASES))
    def test_engine_case_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(**case["options"]),
        )
        _assert_same(golden["engine"][name], summarize_result(result), f"engine[{name}]")

    @pytest.mark.parametrize("name", TELEMETRY_CASES)
    def test_telemetry_model_metrics_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        registry = MetricRegistry()
        run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(telemetry=registry, **case["options"]),
        )
        assert snapshot_digest(registry) == golden["telemetry"][name], f"telemetry[{name}] diverged"


class TestCounterGolden:
    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_counter_case_bit_identical(self, golden, name):
        case = COUNTER_CASES[name]
        counter = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"]
        )
        for batch in batch_reads():
            counter.add_reads(batch)
        _assert_same(golden["counter"][name], summarize_counter(counter), f"counter[{name}]")

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_checkpoint_resume_mid_stream_equivalent(self, golden, name, tmp_path):
        """Save after batch 1 of 3, resume in a fresh counter: same golden."""
        case = COUNTER_CASES[name]
        batches = batch_reads()
        first = DistributedCounter(summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"])
        first.add_reads(batches[0])
        ckpt = first.save(tmp_path / "mid.npz")

        resumed = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"]
        )
        resumed.load(ckpt)
        assert resumed.n_batches == 1
        for batch in batches[1:]:
            resumed.add_reads(batch)
        summary = summarize_counter(resumed)
        expected = dict(golden["counter"][name])
        # The checkpoint restores counting state (tables, received counts,
        # volumes), not execution-side accounting: traffic describes the
        # collectives this process ran, and insert/probe statistics depend
        # on table growth history, which a bulk reload legitimately changes.
        for transient in ("traffic_bytes", "insert_total_probes", "timing"):
            expected.pop(transient)
            summary.pop(transient)
        _assert_same(expected, summary, f"counter-resume[{name}]")


class TestFusedGolden:
    """The fused whole-cluster path must match the same golden records.

    Same case matrix, same expected fields, but executed through
    ``repro.core.stages.fused`` (``EngineOptions(fused=True)``) — proving
    the fused supersteps are bit-identical to the staged path all the way
    back to the pre-refactor engine.
    """

    @pytest.mark.parametrize("name", sorted(ENGINE_CASES))
    def test_engine_case_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(fused=True, **case["options"]),
        )
        _assert_same(golden["engine"][name], summarize_result(result), f"fused-engine[{name}]")

    @pytest.mark.parametrize("name", TELEMETRY_CASES)
    def test_telemetry_model_metrics_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        registry = MetricRegistry()
        run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(telemetry=registry, fused=True, **case["options"]),
        )
        assert snapshot_digest(registry) == golden["telemetry"][name], f"fused-telemetry[{name}] diverged"

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_counter_case_bit_identical(self, golden, name):
        case = COUNTER_CASES[name]
        counter = DistributedCounter(
            summit_gpu(1),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(fused=True),
        )
        for batch in batch_reads():
            counter.add_reads(batch)
        _assert_same(golden["counter"][name], summarize_counter(counter), f"fused-counter[{name}]")

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_checkpoint_resume_mid_stream_equivalent(self, golden, name, tmp_path):
        """Fused save after batch 1 of 3, fused resume: same golden tail."""
        case = COUNTER_CASES[name]
        batches = batch_reads()
        opts = EngineOptions(fused=True)
        first = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"], options=opts
        )
        first.add_reads(batches[0])
        ckpt = first.save(tmp_path / "mid-fused.npz")

        resumed = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"], options=opts
        )
        resumed.load(ckpt)
        assert resumed.n_batches == 1
        for batch in batches[1:]:
            resumed.add_reads(batch)
        summary = summarize_counter(resumed)
        expected = dict(golden["counter"][name])
        # Same transient exclusions as the staged resume test: traffic and
        # probe statistics describe this process's execution history, which
        # a bulk reload legitimately changes.
        for transient in ("traffic_bytes", "insert_total_probes", "timing"):
            expected.pop(transient)
            summary.pop(transient)
        _assert_same(expected, summary, f"fused-counter-resume[{name}]")

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_staged_to_fused_adoption_mid_stream(self, golden, name):
        """Batch 1 staged, batches 2-3 fused via from_tables: same golden."""
        case = COUNTER_CASES[name]
        batches = batch_reads()
        counter = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"]
        )
        counter.add_reads(batches[0])
        counter._scheduler.opts = EngineOptions(fused=True)  # switch paths mid-stream
        counter._scheduler._fused_checked = False
        for batch in batches[1:]:
            counter.add_reads(batch)
        _assert_same(golden["counter"][name], summarize_counter(counter), f"fused-adopt[{name}]")


class TestFusedSpillGolden:
    """Blocked fused×spill must replay the same golden records.

    ``EngineOptions(fused=True, spill_dir=...)`` streams the fused
    supersteps' send buffers through disk partitions and counts them into
    the segmented table one rank block at a time — and still has to match
    the pre-refactor engine bit for bit, with or without the mmap-backed
    table slabs (``table_dir``).
    """

    @pytest.mark.parametrize("name", sorted(ENGINE_CASES))
    def test_engine_case_bit_identical(self, golden, reads, name, tmp_path):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(fused=True, spill_dir=tmp_path, **case["options"]),
        )
        _assert_same(golden["engine"][name], summarize_result(result), f"fused-spill-engine[{name}]")

    @pytest.mark.parametrize("name", TELEMETRY_CASES)
    def test_telemetry_model_metrics_bit_identical(self, golden, reads, name, tmp_path):
        case = ENGINE_CASES[name]
        registry = MetricRegistry()
        run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(telemetry=registry, fused=True, spill_dir=tmp_path, **case["options"]),
        )
        assert snapshot_digest(registry) == golden["telemetry"][name], (
            f"fused-spill-telemetry[{name}] diverged"
        )

    @pytest.mark.parametrize("name", ("gpu-kmer", "gpu-supermer-m7"))
    def test_mmap_table_case_bit_identical(self, golden, reads, name, tmp_path):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(
                fused=True,
                spill_dir=tmp_path / "spool",
                table_dir=tmp_path / "table",
                **case["options"],
            ),
        )
        _assert_same(golden["engine"][name], summarize_result(result), f"mmap-table-engine[{name}]")

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="process substrate needs os.fork")
    @pytest.mark.parametrize("name", ("gpu-kmer", "gpu-supermer-m7"))
    def test_process_substrate_case_bit_identical(self, golden, reads, name, tmp_path):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(
                fused=True, spill_dir=tmp_path, parallel="process:2", **case["options"]
            ),
        )
        _assert_same(
            golden["engine"][name], summarize_result(result), f"process-fused-spill[{name}]"
        )

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_counter_case_bit_identical(self, golden, name, tmp_path):
        case = COUNTER_CASES[name]
        counter = DistributedCounter(
            summit_gpu(1),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(fused=True, spill_dir=tmp_path),
        )
        for batch in batch_reads():
            counter.add_reads(batch)
        _assert_same(
            golden["counter"][name], summarize_counter(counter), f"fused-spill-counter[{name}]"
        )

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_checkpoint_resume_mid_stream_equivalent(self, golden, name, tmp_path):
        """Fused×spill save after batch 1 of 3, resume: same golden tail."""
        case = COUNTER_CASES[name]
        batches = batch_reads()
        opts = lambda sub: EngineOptions(fused=True, spill_dir=tmp_path / sub)  # noqa: E731
        first = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"], options=opts("a")
        )
        first.add_reads(batches[0])
        ckpt = first.save(tmp_path / "mid-fused-spill.npz")

        resumed = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"], options=opts("b")
        )
        resumed.load(ckpt)
        assert resumed.n_batches == 1
        for batch in batches[1:]:
            resumed.add_reads(batch)
        summary = summarize_counter(resumed)
        expected = dict(golden["counter"][name])
        # Same transient exclusions as the staged resume test: traffic and
        # probe statistics describe this process's execution history, which
        # a bulk reload legitimately changes.
        for transient in ("traffic_bytes", "insert_total_probes", "timing"):
            expected.pop(transient)
            summary.pop(transient)
        _assert_same(expected, summary, f"fused-spill-counter-resume[{name}]")


class TestSpmdGolden:
    @pytest.mark.parametrize("name", sorted(SPMD_CASES))
    def test_spmd_case_bit_identical(self, golden, reads, name):
        case = SPMD_CASES[name]
        spectrum = count_spmd(reads, case["n_ranks"], PipelineConfig(**case["config"]))
        assert spectrum_digest(spectrum) == golden["spmd"][name], f"spmd[{name}] diverged"


class TestTracedGolden:
    """Tracing on (``EngineOptions(trace=True)``) must not move a single bit.

    Same golden records, same case matrix, with the hierarchical span
    recorder threaded through the run — spans carry host timestamps only,
    so every deterministic observable must still match the pre-refactor
    engine exactly.
    """

    @pytest.mark.parametrize("name", sorted(ENGINE_CASES))
    def test_engine_case_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        options = EngineOptions(trace=True, **case["options"])
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=options,
        )
        _assert_same(golden["engine"][name], summarize_result(result), f"traced-engine[{name}]")
        assert len(options.trace) > 0  # the run actually recorded spans

    @pytest.mark.parametrize("name", TELEMETRY_CASES)
    def test_telemetry_model_metrics_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        registry = MetricRegistry()
        run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(telemetry=registry, trace=True, **case["options"]),
        )
        assert snapshot_digest(registry) == golden["telemetry"][name], (
            f"traced-telemetry[{name}] diverged"
        )


@pytest.mark.skipif(not hasattr(os, "fork"), reason="process substrate needs os.fork")
class TestProcessGolden:
    """The process substrate must replay the whole golden matrix bit for bit.

    Same cases, same expected records, but every per-rank phase runs in
    forked worker processes (``EngineOptions(parallel="process:2")``) with
    results shipped back through shared memory — proving that crossing a
    process boundary moves no deterministic observable: staged, fused, and
    spilled engines, streamed counter batches, checkpoint/resume, and the
    model-metric telemetry snapshot all still match the sequential golden.
    """

    @pytest.mark.parametrize("name", sorted(ENGINE_CASES))
    def test_engine_case_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(parallel="process:2", **case["options"]),
        )
        _assert_same(golden["engine"][name], summarize_result(result), f"process-engine[{name}]")

    @pytest.mark.parametrize("name", TELEMETRY_CASES)
    def test_telemetry_model_metrics_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        registry = MetricRegistry()
        run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(telemetry=registry, parallel="process:2", **case["options"]),
        )
        assert snapshot_digest(registry) == golden["telemetry"][name], (
            f"process-telemetry[{name}] diverged"
        )

    @pytest.mark.parametrize("name", ("gpu-kmer", "gpu-supermer-m7"))
    def test_fused_case_bit_identical(self, golden, reads, name):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(fused=True, parallel="process:2", **case["options"]),
        )
        _assert_same(
            golden["engine"][name], summarize_result(result), f"process-fused[{name}]"
        )

    @pytest.mark.parametrize("name", ("gpu-kmer", "gpu-supermer-m7"))
    def test_spill_case_bit_identical(self, golden, reads, name, tmp_path):
        case = ENGINE_CASES[name]
        result = run_pipeline(
            reads,
            build_cluster(*case["cluster"]),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(spill_dir=tmp_path, parallel="process:2", **case["options"]),
        )
        _assert_same(
            golden["engine"][name], summarize_result(result), f"process-spill[{name}]"
        )

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_counter_case_bit_identical(self, golden, name):
        case = COUNTER_CASES[name]
        counter = DistributedCounter(
            summit_gpu(1),
            PipelineConfig(**case["config"]),
            backend=case["backend"],
            options=EngineOptions(parallel="process:2"),
        )
        for batch in batch_reads():
            counter.add_reads(batch)
        _assert_same(
            golden["counter"][name], summarize_counter(counter), f"process-counter[{name}]"
        )

    @pytest.mark.parametrize("name", sorted(COUNTER_CASES))
    def test_checkpoint_resume_mid_stream_equivalent(self, golden, name, tmp_path):
        """Process-substrate save after batch 1 of 3, resume: same golden."""
        case = COUNTER_CASES[name]
        batches = batch_reads()
        opts = EngineOptions(parallel="process:2")
        first = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"], options=opts
        )
        first.add_reads(batches[0])
        ckpt = first.save(tmp_path / "mid-process.npz")

        resumed = DistributedCounter(
            summit_gpu(1), PipelineConfig(**case["config"]), backend=case["backend"], options=opts
        )
        resumed.load(ckpt)
        assert resumed.n_batches == 1
        for batch in batches[1:]:
            resumed.add_reads(batch)
        summary = summarize_counter(resumed)
        expected = dict(golden["counter"][name])
        # Same transient exclusions as the staged resume test: traffic and
        # probe statistics describe this process's execution history, which
        # a bulk reload legitimately changes.
        for transient in ("traffic_bytes", "insert_total_probes", "timing"):
            expected.pop(transient)
            summary.pop(transient)
        _assert_same(expected, summary, f"process-counter-resume[{name}]")
