"""Tests for incremental counting and checkpoint/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.incremental import DistributedCounter
from repro.dna.reads import ReadSet
from repro.kmers.spectrum import count_kmers_exact
from repro.mpi.topology import summit_gpu


@pytest.fixture(scope="module")
def batches(genome_reads):
    """The genome read set split into three streaming batches."""
    n = genome_reads.n_reads
    idx = list(range(n))
    return [
        genome_reads.select(idx[: n // 3]),
        genome_reads.select(idx[n // 3 : 2 * n // 3]),
        genome_reads.select(idx[2 * n // 3 :]),
    ]


class TestIncrementalCounting:
    def test_batches_equal_single_shot(self, genome_reads, batches):
        counter = DistributedCounter(summit_gpu(2), PipelineConfig(k=17))
        for batch in batches:
            counter.add_reads(batch)
        assert counter.spectrum().equals(count_kmers_exact(genome_reads, 17))
        assert counter.n_batches == 3
        assert counter.total_kmers == count_kmers_exact(genome_reads, 17).n_total

    def test_supermer_mode(self, genome_reads, batches):
        cfg = PipelineConfig(k=17, mode="supermer", minimizer_len=7, window=15)
        counter = DistributedCounter(summit_gpu(2), cfg)
        for batch in batches:
            counter.add_reads(batch)
        assert counter.spectrum().equals(count_kmers_exact(genome_reads, 17))

    def test_timing_accumulates(self, batches):
        counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        t1 = counter.add_reads(batches[0])
        total_after_one = counter.timing.total
        counter.add_reads(batches[1])
        assert counter.timing.total > total_after_one
        assert t1.total <= counter.timing.total

    def test_cpu_backend(self, batches):
        from repro.mpi.topology import summit_cpu

        counter = DistributedCounter(summit_cpu(1), PipelineConfig(k=17), backend="cpu")
        counter.add_reads(batches[0])
        partial = count_kmers_exact(batches[0], 17)
        assert counter.spectrum().equals(partial)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            DistributedCounter(summit_gpu(1), backend="fpga")

    def test_empty_batch(self):
        counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        counter.add_reads(ReadSet.empty())
        assert counter.total_kmers == 0


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, genome_reads, batches, tmp_path):
        cfg = PipelineConfig(k=17)
        cluster = summit_gpu(2)

        # Uninterrupted run.
        full = DistributedCounter(cluster, cfg)
        for batch in batches:
            full.add_reads(batch)

        # Interrupted after batch 1, checkpointed, resumed in a new counter.
        first = DistributedCounter(cluster, cfg)
        first.add_reads(batches[0])
        ckpt = first.save(tmp_path / "state.npz")

        resumed = DistributedCounter(cluster, cfg)
        resumed.load(ckpt)
        assert resumed.n_batches == 1
        for batch in batches[1:]:
            resumed.add_reads(batch)

        assert resumed.spectrum().equals(full.spectrum())
        assert np.array_equal(resumed.received_kmers, full.received_kmers)
        assert resumed.exchanged_items == full.exchanged_items

    def test_timing_restored(self, batches, tmp_path):
        counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        counter.add_reads(batches[0])
        path = counter.save(tmp_path / "c.npz")
        other = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        other.load(path)
        assert other.timing.total == pytest.approx(counter.timing.total)

    def test_k_mismatch_rejected(self, batches, tmp_path):
        counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        counter.add_reads(batches[0])
        path = counter.save(tmp_path / "c.npz")
        wrong = DistributedCounter(summit_gpu(1), PipelineConfig(k=19))
        with pytest.raises(ValueError, match="k="):
            wrong.load(path)

    def test_rank_mismatch_rejected(self, batches, tmp_path):
        counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        counter.add_reads(batches[0])
        path = counter.save(tmp_path / "c.npz")
        wrong = DistributedCounter(summit_gpu(2), PipelineConfig(k=17))
        with pytest.raises(ValueError, match="ranks"):
            wrong.load(path)

    def test_checkpoint_empty_counter(self, tmp_path):
        counter = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        path = counter.save(tmp_path / "empty.npz")
        other = DistributedCounter(summit_gpu(1), PipelineConfig(k=17))
        other.load(path)
        assert other.total_kmers == 0
