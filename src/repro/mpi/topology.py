"""Cluster topology descriptions for the communication simulator.

The paper's machine is Summit (Section V-A): IBM AC922 nodes, each with two
Power9 sockets (42 usable cores) and 6 NVIDIA V100s, nodes connected by a
dual-rail EDR InfiniBand fat tree with ~23 GB/s *per-node* injection
bandwidth.  Two rank layouts are used: 6 ranks/node (one per GPU) for the
GPU runs and 42 ranks/node (one per core) for the CPU baseline.

:class:`ClusterSpec` captures exactly what the communication cost model
needs — rank->node mapping, per-node injection bandwidth, intra-node
bandwidth, and message latency.  Since the unified machine-model layer
landed, the numbers come from a declarative
:class:`~repro.machines.MachineSpec`: :func:`cluster_for` instantiates any
registered machine (or calibration file) at a node count, and the named
Summit constructors below are now thin wrappers over the ``summit-gpu`` /
``summit-cpu`` presets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..machines import MachineSpec, NetworkSpec, get_machine, resolve_machine

__all__ = ["ClusterSpec", "cluster_for", "summit_gpu", "summit_cpu"]

# Summit's network constants, re-exported from the ``summit-gpu`` machine
# preset — the registry is the single source of truth; these names remain
# for callers that want the raw numbers (Section V-A: "providing per node
# injection bandwidth of 23 GB/s").
_SUMMIT = get_machine("summit-gpu")

#: Per-node injection bandwidth on Summit, bytes/s.
SUMMIT_INJECTION_BW: float = _SUMMIT.injection_bw

#: Intra-node rank-to-rank bandwidth (NVLink / shared memory), bytes/s.
SUMMIT_INTRA_NODE_BW: float = _SUMMIT.intra_node_bw

#: Effective point-to-point message latency, seconds.
SUMMIT_LATENCY: float = _SUMMIT.latency


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster for the bulk-synchronous communication model.

    ``alltoallv_efficiency`` is the calibration knob mapping peak injection
    bandwidth to the effective bandwidth a many-rank MPI_Alltoallv actually
    achieves (protocol overhead, rail sharing, pipelining stalls); measured
    alltoallv on large systems typically lands at a few percent of peak for
    this many ranks.  The default 0.04 is calibrated so the modeled H.
    sapiens 54X exchange on 64 nodes lands near the paper's ~25-30 s
    (Fig. 3b), making exchange ~80% of the GPU pipeline as published.
    """

    name: str
    n_nodes: int
    ranks_per_node: int
    injection_bw: float = SUMMIT_INJECTION_BW
    intra_node_bw: float = SUMMIT_INTRA_NODE_BW
    latency: float = SUMMIT_LATENCY
    alltoallv_efficiency: float = 0.04
    placement: str = "block"  # rank->node mapping: "block" (jsrun) or "round-robin"
    # Socket count per node: how the intra-node rank block splits across
    # sockets when the network models an NVLink/X-bus distinction.
    sockets_per_node: int = 2
    # Full link hierarchy (switch levels, socket split, protocol regimes,
    # incast, GPUDirect).  None = the flat single-level topology implied by
    # the fields above; ``resolved_network`` builds it on demand.
    network: NetworkSpec | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.ranks_per_node < 1:
            raise ValueError("n_nodes and ranks_per_node must be positive")
        if self.injection_bw <= 0 or self.intra_node_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if not 0 < self.alltoallv_efficiency <= 1:
            raise ValueError("alltoallv_efficiency must be in (0, 1]")
        if self.placement not in ("block", "round-robin"):
            raise ValueError("placement must be 'block' or 'round-robin'")
        if self.sockets_per_node < 1:
            raise ValueError("sockets_per_node must be >= 1")
        if self.network is not None:
            for fname in ("injection_bw", "intra_node_bw", "latency", "alltoallv_efficiency"):
                if getattr(self.network, fname) != getattr(self, fname):
                    raise ValueError(
                        f"cluster {self.name!r}: network.{fname} disagrees with the flat field; "
                        "build clusters through cluster_for() or keep the two in sync"
                    )

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node

    @property
    def resolved_network(self) -> NetworkSpec:
        """The link hierarchy, or the flat spec the legacy fields imply.

        ``getattr`` tolerates pre-refactor pickles (checkpointed states)
        that lack the ``network`` attribute.
        """
        network = getattr(self, "network", None)
        if network is not None:
            return network
        return NetworkSpec(
            injection_bw=self.injection_bw,
            intra_node_bw=self.intra_node_bw,
            latency=self.latency,
            alltoallv_efficiency=self.alltoallv_efficiency,
        )

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``.

        ``"block"`` packs consecutive ranks on a node (jsrun's default and
        the paper's layout); ``"round-robin"`` deals ranks across nodes —
        the placement knob cluster schedulers expose, which changes how a
        skewed traffic matrix aggregates onto node uplinks.
        """
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        if self.placement == "block":
            return rank // self.ranks_per_node
        return rank % self.n_nodes

    def node_map(self) -> np.ndarray:
        """int32 array mapping every rank to its node."""
        ranks = np.arange(self.n_ranks, dtype=np.int32)
        if self.placement == "block":
            return (ranks // self.ranks_per_node).astype(np.int32)
        return (ranks % self.n_nodes).astype(np.int32)

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """Same cluster at a different node count (for scaling sweeps)."""
        return replace(self, n_nodes=n_nodes)


def cluster_for(machine: MachineSpec | str, n_nodes: int) -> ClusterSpec:
    """Instantiate a machine's rank topology at ``n_nodes`` nodes.

    ``machine`` is a :class:`~repro.machines.MachineSpec`, a registered
    preset name, or a calibration-file path (resolved through
    :func:`repro.machines.resolve_machine`).  Every network parameter of
    the resulting cluster comes from the machine spec; the node count is
    the one run-time override.
    """
    m = resolve_machine(machine)
    return ClusterSpec(
        name=f"{m.name}-{n_nodes}n",
        n_nodes=n_nodes,
        ranks_per_node=m.effective_ranks_per_node,
        injection_bw=m.injection_bw,
        intra_node_bw=m.intra_node_bw,
        latency=m.latency,
        alltoallv_efficiency=m.alltoallv_efficiency,
        placement=m.placement,
        sockets_per_node=m.sockets_per_node,
        network=m.network,
    )


def summit_gpu(n_nodes: int) -> ClusterSpec:
    """Summit GPU layout: 6 MPI ranks per node, one per V100 (Section V-A)."""
    return cluster_for(get_machine("summit-gpu"), n_nodes)


def summit_cpu(n_nodes: int) -> ClusterSpec:
    """Summit CPU-baseline layout: 42 MPI ranks per node, one per core."""
    return cluster_for(get_machine("summit-cpu"), n_nodes)
