"""Unit tests for the fused execution path's building blocks.

Covers the scratch-buffer arena, the segmented hash table against its
per-rank reference, the ``assume_unique`` insert fast path, the doubling
window pack, fused-mode resolution (flag/env/fallback), and the CLI
surface (``--fused``, ``--profile``).  The end-to-end bit-identity of
fused runs is proven by the golden suite (``test_stages_golden.py``) and
the randomized differential suite (``test_fused_property.py``).
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.memory import ScratchArena
from repro.core.stages.fused import resolve_fused, supports_fusion
from repro.gpu.hashtable import DeviceHashTable, InsertStats
from repro.gpu.segmented import SegmentedHashTable
from repro.kmers.extract import extract_kmers_scalar, window_values
from repro.telemetry import MetricRegistry, session


def _random_keys(rng: np.random.Generator, n: int, space: int = 512) -> np.ndarray:
    return rng.integers(0, space, size=n).astype(np.uint64)


# -- scratch arena ------------------------------------------------------------


class TestScratchArena:
    def test_take_returns_requested_length_and_dtype(self):
        arena = ScratchArena()
        buf = arena.take(100, np.int64)
        assert buf.shape == (100,) and buf.dtype == np.int64

    def test_release_then_take_reuses_block(self):
        arena = ScratchArena()
        buf = arena.take(2000, np.uint64)
        base = buf.base
        arena.release(buf)
        again = arena.take(1500, np.uint64)
        assert again.base is base
        assert arena.bytes_reused == 1500 * 8

    def test_capacity_rounds_to_power_of_two(self):
        arena = ScratchArena()
        buf = arena.take(1025, np.uint8)
        assert buf.base.shape == (2048,)
        assert arena.footprint_bytes == 2048

    def test_dtype_pools_are_separate(self):
        arena = ScratchArena()
        a = arena.take(10, np.int64)
        arena.release(a)
        b = arena.take(10, np.uint64)
        assert b.base is not a.base  # no cross-dtype reuse
        assert arena.bytes_reused == 0

    def test_double_release_raises(self):
        arena = ScratchArena()
        buf = arena.take(10, np.int64)
        arena.release(buf)
        with pytest.raises(ValueError, match="twice"):
            arena.release(buf)

    def test_release_ignores_none_and_foreign_arrays(self):
        arena = ScratchArena()
        arena.release(None, np.empty(5), np.empty(5)[1:])  # no-op, no error

    def test_negative_take_raises(self):
        arena = ScratchArena()
        with pytest.raises(ValueError, match="negative"):
            arena.take(-1, np.int64)

    def test_reset_drops_pooled_blocks(self):
        arena = ScratchArena()
        arena.release(arena.take(10, np.int64))
        arena.reset()
        assert arena.footprint_bytes == 0
        arena.take(10, np.int64)  # allocates fresh
        assert arena.bytes_reused == 0

    def test_dead_borrow_is_forgotten_not_adopted(self):
        """Regression: a borrowed block that dies unreleased must leave the
        owned registry, so an unrelated array reusing its ``id()`` can never
        be adopted into the free lists."""
        import gc

        arena = ScratchArena()
        view = arena.take(2000, np.uint64)
        block_id = id(view.base)
        nbytes = view.base.nbytes
        before = arena.footprint_bytes
        del view
        gc.collect()
        assert block_id not in arena._owned
        assert arena.footprint_bytes == before - nbytes

    def test_id_reuse_cannot_smuggle_foreign_array_into_pool(self):
        """Regression: ScratchArena._owned used to store bare ids with no
        reference; after the borrowed block was collected, a foreign array
        allocated at the same id could be released into the free lists and
        handed to a later take() while its real owner still used it."""
        import gc

        arena = ScratchArena()
        view = arena.take(2000, np.uint64)
        del view
        gc.collect()
        # Whatever array we allocate now — even at a recycled id — must be
        # rejected: the weakref registry no longer claims it.
        foreign = np.zeros(4096, dtype=np.uint64)
        arena.release(foreign)
        assert all(foreign is not b for blocks in arena._free.values() for b in blocks)
        taken = arena.take(2000, np.uint64)
        assert taken.base is not foreign

    def test_reset_survives_outstanding_borrow_death(self):
        """A block borrowed across reset() must not double-decrement the
        footprint when it finally dies."""
        import gc

        arena = ScratchArena()
        view = arena.take(2000, np.uint64)
        held = arena.take(3000, np.int64)
        arena.release(view)
        arena.reset()  # drops the pooled uint64 block, held stays borrowed
        footprint_after_reset = arena.footprint_bytes
        del held
        gc.collect()
        assert arena.footprint_bytes == footprint_after_reset - 4096 * 8
        del view
        gc.collect()
        assert arena.footprint_bytes >= 0

    def test_telemetry_counters_are_wall_only(self):
        reg = MetricRegistry()
        with session(reg):
            arena = ScratchArena()
            buf = arena.take(10, np.int64)
            arena.release(buf)
            arena.take(10, np.int64)
        wall = set(reg.snapshot(include_wall=True))
        model = set(reg.snapshot(include_wall=False))
        arena_names = {"arena_bytes_allocated_total", "arena_bytes_reused_total", "arena_peak_bytes"}
        assert arena_names <= wall
        assert not model & arena_names


# -- segmented hash table -----------------------------------------------------


def _per_rank_reference(
    segments: list[np.ndarray], hints: list[int], **kw
) -> tuple[list[DeviceHashTable], list[InsertStats]]:
    tables = [DeviceHashTable(h, **kw) for h in hints]
    stats = [
        t.insert_batch(seg) if seg.size else InsertStats.zero() for t, seg in zip(tables, segments)
    ]
    return tables, stats


def _offsets(segments: list[np.ndarray]) -> np.ndarray:
    return np.concatenate([[0], np.cumsum([s.shape[0] for s in segments])]).astype(np.int64)


@pytest.mark.parametrize("probing", ["linear", "quadratic", "double"])
def test_insert_flat_matches_per_rank_tables(probing):
    rng = np.random.default_rng(7)
    segments = [_random_keys(rng, n) for n in (300, 0, 57, 1000)]
    hints = [64, 64, 8, 128]
    seg = SegmentedHashTable(hints, seed=3, probing=probing)
    stats = seg.insert_flat(np.concatenate(segments), _offsets(segments))
    tables, ref_stats = _per_rank_reference(segments, hints, seed=3, probing=probing)
    for r, (table, ref) in enumerate(zip(tables, ref_stats)):
        assert stats[r] == ref, f"rank {r} stats diverged"
        keys, counts = seg.items_of(r)
        rkeys, rcounts = table.items()
        assert np.array_equal(keys, rkeys) and np.array_equal(counts, rcounts)
        # Layouts (not just sorted items) must agree slot for slot.
        lo, hi = int(seg.region_base[r]), int(seg.region_base[r + 1])
        assert np.array_equal(seg.keys[lo:hi], table.keys)
        assert np.array_equal(seg.counts[lo:hi], table.counts)


def test_insert_flat_resize_path_matches_repeated_doubling():
    rng = np.random.default_rng(11)
    # Tiny hints force several growth events inside one flat insert.
    segments = [_random_keys(rng, 900, space=4096), _random_keys(rng, 500, space=4096)]
    hints = [1, 1]
    seg = SegmentedHashTable(hints, seed=0)
    stats = seg.insert_flat(np.concatenate(segments), _offsets(segments))
    tables, ref_stats = _per_rank_reference(segments, hints, seed=0)
    assert [s.resizes for s in stats] == [s.resizes for s in ref_stats]
    assert stats == ref_stats
    for r, table in enumerate(tables):
        lo, hi = int(seg.region_base[r]), int(seg.region_base[r + 1])
        assert np.array_equal(seg.keys[lo:hi], table.keys)
        assert np.array_equal(seg.counts[lo:hi], table.counts)


def test_insert_flat_over_multiple_rounds_matches():
    rng = np.random.default_rng(13)
    hints = [32, 32, 32]
    seg = SegmentedHashTable(hints, seed=5)
    tables = [DeviceHashTable(h, seed=5) for h in hints]
    for _ in range(4):
        segments = [_random_keys(rng, int(n)) for n in rng.integers(0, 400, size=3)]
        stats = seg.insert_flat(np.concatenate(segments), _offsets(segments))
        for r, segment in enumerate(segments):
            ref = tables[r].insert_batch(segment) if segment.size else InsertStats.zero()
            assert stats[r] == ref
    for r, table in enumerate(tables):
        keys, counts = seg.items_of(r)
        rkeys, rcounts = table.items()
        assert np.array_equal(keys, rkeys) and np.array_equal(counts, rcounts)


def test_insert_flat_weights_and_validation():
    seg = SegmentedHashTable([64, 64])
    vals = np.array([5, 5, 9], dtype=np.uint64)
    offs = np.array([0, 2, 3], dtype=np.int64)
    seg.insert_flat(vals, offs, weights=np.array([2, 3, 4], dtype=np.int64))
    keys0, counts0 = seg.items_of(0)
    assert keys0.tolist() == [5] and counts0.tolist() == [5]
    keys1, counts1 = seg.items_of(1)
    assert keys1.tolist() == [9] and counts1.tolist() == [4]
    with pytest.raises(ValueError, match="seg_offsets"):
        seg.insert_flat(vals, np.array([0, 3], dtype=np.int64))
    with pytest.raises(ValueError, match="span"):
        seg.insert_flat(vals, np.array([0, 2, 4], dtype=np.int64))
    with pytest.raises(ValueError, match=">= 1"):
        seg.insert_flat(vals, offs, weights=np.array([1, 0, 1], dtype=np.int64))


def test_from_tables_preserves_layout_and_future_stats():
    rng = np.random.default_rng(17)
    segments = [_random_keys(rng, 200), _random_keys(rng, 350)]
    tables, _ = _per_rank_reference(segments, [64, 64], seed=9)
    seg = SegmentedHashTable.from_tables(tables)
    for r, table in enumerate(tables):
        lo, hi = int(seg.region_base[r]), int(seg.region_base[r + 1])
        assert np.array_equal(seg.keys[lo:hi], table.keys)
        assert np.array_equal(seg.counts[lo:hi], table.counts)
    # Future inserts produce the same probe statistics either way.
    more = [_random_keys(rng, 150), _random_keys(rng, 150)]
    stats = seg.insert_flat(np.concatenate(more), _offsets(more))
    for r, table in enumerate(tables):
        assert stats[r] == table.insert_batch(more[r])


def test_from_tables_rejects_mismatched_parameters():
    a = DeviceHashTable(64, seed=1)
    b = DeviceHashTable(64, seed=2)
    with pytest.raises(ValueError, match="disagree"):
        SegmentedHashTable.from_tables([a, b])
    with pytest.raises(ValueError, match="at least one"):
        SegmentedHashTable.from_tables([])


def test_rank_view_duck_types_device_table():
    rng = np.random.default_rng(19)
    segments = [_random_keys(rng, 100), _random_keys(rng, 100)]
    seg = SegmentedHashTable([64, 64], seed=2)
    seg.insert_flat(np.concatenate(segments), _offsets(segments))
    ref, _ = _per_rank_reference(segments, [64, 64], seed=2)
    for r, view in enumerate(seg.views()):
        assert view.capacity == ref[r].capacity
        assert view.n_entries == ref[r].n_entries
        assert view.load_factor == ref[r].load_factor
        assert view.table_bytes == ref[r].table_bytes
        assert np.array_equal(view.items()[0], ref[r].items()[0])
        probe = np.array([1, 2, 3], dtype=np.uint64)
        assert np.array_equal(view.lookup_batch(probe), ref[r].lookup_batch(probe))


def test_rank_view_insert_batch_routes_to_parent_region():
    """A staged batch over adopted views must keep counting correctly."""
    rng = np.random.default_rng(23)
    segments = [_random_keys(rng, 120), _random_keys(rng, 80)]
    seg = SegmentedHashTable([64, 64], seed=4)
    seg.insert_flat(np.concatenate(segments), _offsets(segments))
    ref, _ = _per_rank_reference(segments, [64, 64], seed=4)
    extra = [_random_keys(rng, 60), _random_keys(rng, 60)]
    for r, view in enumerate(seg.views()):
        assert view.insert_batch(extra[r]) == ref[r].insert_batch(extra[r])
        assert np.array_equal(view.items()[1], ref[r].items()[1])


# -- assume_unique fast path --------------------------------------------------


def test_insert_batch_assume_unique_matches_default_path():
    rng = np.random.default_rng(29)
    raw = _random_keys(rng, 500)
    uniq, counts = np.unique(raw, return_counts=True)
    a = DeviceHashTable(64, seed=6)
    b = DeviceHashTable(64, seed=6)
    stats_a = a.insert_batch(raw)
    stats_b = b.insert_batch(uniq, weights=counts.astype(np.int64), assume_unique=True)
    assert stats_a == stats_b
    assert np.array_equal(a.keys, b.keys) and np.array_equal(a.counts, b.counts)


def test_insert_batch_assume_unique_validates_ordering():
    t = DeviceHashTable(64)
    with pytest.raises(ValueError, match="strictly increasing"):
        t.insert_batch(np.array([3, 2], dtype=np.uint64), assume_unique=True)
    with pytest.raises(ValueError, match="strictly increasing"):
        t.insert_batch(np.array([2, 2], dtype=np.uint64), assume_unique=True)
    # Sorted-unique input is accepted without weights.
    t.insert_batch(np.array([2, 3], dtype=np.uint64), assume_unique=True)
    assert t.n_entries == 2


# -- doubling window pack -----------------------------------------------------


@pytest.mark.parametrize("width", [1, 2, 3, 5, 7, 11, 16, 17, 23, 31, 32])
def test_window_values_matches_scalar_reference(width):
    from repro.dna.encoding import string_to_codes

    rng = np.random.default_rng(width)
    bases = "ACGTN"
    read = "".join(bases[i] for i in rng.integers(0, 5, size=200))
    windows = window_values(string_to_codes(read), width)
    assert windows.compact().tolist() == extract_kmers_scalar(read, width)


def test_window_values_rejects_bad_width():
    with pytest.raises(ValueError, match="width"):
        window_values(np.zeros(4, dtype=np.uint8), 33)


# -- fused-mode resolution ----------------------------------------------------


def test_resolve_fused_explicit_flag_wins(monkeypatch):
    monkeypatch.setenv("REPRO_FUSED", "1")
    assert resolve_fused(False) is False
    monkeypatch.setenv("REPRO_FUSED", "0")
    assert resolve_fused(True) is True


@pytest.mark.parametrize("value,expected", [
    ("1", True), ("on", True), ("TRUE", True), ("auto", True), ("fused", True),
    ("", False), ("0", False), ("off", False), ("no", False), ("none", False),
])
def test_resolve_fused_env_values(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_FUSED", value)
    assert resolve_fused(None) is expected


def test_resolve_fused_unset_env_defaults_off(monkeypatch):
    monkeypatch.delenv("REPRO_FUSED", raising=False)
    assert resolve_fused(None) is False


def test_resolve_fused_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_FUSED", "maybe")
    with pytest.raises(ValueError, match="REPRO_FUSED"):
        resolve_fused(None)


def test_supports_fusion_standard_compositions():
    from repro.core.config import PipelineConfig
    from repro.core.engine import EngineOptions
    from repro.core.stages.registry import resolve

    for key in ("gpu:kmer", "gpu:supermer", "cpu:kmer", "cpu:supermer"):
        comp = resolve(key, PipelineConfig(k=17, mode=key.split(":")[1]), EngineOptions())
        assert supports_fusion(comp), key


def test_custom_composition_falls_back_to_staged(caplog):
    import dataclasses

    from repro.core.config import PipelineConfig
    from repro.core.engine import EngineOptions, run_pipeline
    from repro.core.stages.registry import resolve
    from repro.core.stages.scheduler import RoundScheduler
    from repro.core.stages.standard import SpectrumMerge
    from repro.dna.simulate import simulate_dataset
    from repro.mpi.topology import summit_gpu

    class CustomMerge(SpectrumMerge):
        pass

    config = PipelineConfig(k=15, mode="kmer")
    opts = EngineOptions(fused=True)
    comp = resolve("gpu:kmer", config, opts)
    custom = dataclasses.replace(comp, merge=CustomMerge())
    assert not supports_fusion(custom)

    reads = simulate_dataset(genome_length=3000, coverage=3, seed=5)
    cluster = summit_gpu(1)
    with caplog.at_level(logging.INFO, logger="repro.telemetry"):
        fallback = RoundScheduler(cluster, config, custom, opts).run(reads)
    assert any("engine.fused.fallback" in rec.message for rec in caplog.records)
    staged = run_pipeline(reads, cluster, config, backend="gpu", options=EngineOptions())
    assert np.array_equal(fallback.spectrum.values, staged.spectrum.values)
    assert np.array_equal(fallback.spectrum.counts, staged.spectrum.counts)


def test_fused_then_staged_batches_share_one_table_state():
    """Flipping fused off mid-stream continues on the adopted views."""
    from repro.core.config import PipelineConfig
    from repro.core.engine import EngineOptions
    from repro.core.incremental import DistributedCounter
    from repro.dna.simulate import simulate_dataset
    from repro.mpi.topology import summit_gpu

    config = PipelineConfig(k=15, mode="kmer")
    batches = [simulate_dataset(genome_length=3000, coverage=3, seed=s) for s in (1, 2)]

    mixed = DistributedCounter(summit_gpu(1), config, backend="gpu", options=EngineOptions(fused=True))
    mixed.add_reads(batches[0])
    mixed._scheduler.opts = EngineOptions(fused=False)
    mixed._scheduler._fused_checked = False
    mixed._scheduler._fused_impl = None
    mixed.add_reads(batches[1])

    plain = DistributedCounter(summit_gpu(1), config, backend="gpu")
    for batch in batches:
        plain.add_reads(batch)

    a, b = mixed.spectrum(), plain.spectrum()
    assert np.array_equal(a.values, b.values) and np.array_equal(a.counts, b.counts)
    assert mixed.timing == plain.timing


# -- CLI surface --------------------------------------------------------------


def test_cli_fused_and_profile_smoke(tmp_path, capsys):
    from repro.cli import main

    fastq = tmp_path / "reads.fastq"
    assert main(["simulate", "--out", str(fastq), "--genome-length", "4000", "--coverage", "3", "--seed", "2"]) == 0
    db_fused = tmp_path / "fused.db"
    db_staged = tmp_path / "staged.db"
    rc = main(
        ["count", "--input", str(fastq), "-k", "15", "--nodes", "1",
         "--fused", "--profile", "5", "--out-db", str(db_fused)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "host-time profile" in out
    assert "cumulative" in out
    assert main(["count", "--input", str(fastq), "-k", "15", "--nodes", "1", "--out-db", str(db_staged)]) == 0
    assert db_fused.read_bytes() == db_staged.read_bytes()
